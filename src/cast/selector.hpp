// Gossip-target selection — the one function that distinguishes the
// dissemination algorithms of the paper:
//
//   Fig. 1(b)  flooding:  every link except the sender        (deterministic)
//   Fig. 2     RANDCAST:  F random r-links except the sender  (probabilistic)
//   Fig. 5     RINGCAST:  both ring d-links except the sender,
//              topped up to F with random r-links             (hybrid)
//
// The HybridSelector implements the general hybrid rule of §5 — forward
// across *all* outgoing d-links plus random r-links — so the same code
// drives RINGCAST (two d-links) and multi-ring RINGCAST (2k d-links).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "cast/snapshot.hpp"
#include "common/rng.hpp"
#include "net/node_id.hpp"

namespace vs07::cast {

/// Strategy interface: choose where `self` forwards a freshly received
/// message. `receivedFrom` is kNoNode when `self` is the origin.
class TargetSelector {
 public:
  virtual ~TargetSelector() = default;

  /// Fills `out` (cleared first) with distinct targets; never includes
  /// `receivedFrom` or `self`. May exceed `fanout` only when the
  /// algorithm's deterministic links alone do (RINGCAST with F < 2,
  /// exactly as the paper's Fig. 5 pseudocode behaves).
  virtual void selectTargets(const OverlaySnapshot& overlay, NodeId self,
                             NodeId receivedFrom, std::uint32_t fanout,
                             Rng& rng, std::vector<NodeId>& out) const = 0;

  /// Display name for reports and tables.
  virtual std::string_view name() const = 0;
};

/// Deterministic flooding (Fig. 1): forward across every outgoing link
/// (d-links and r-links) except back to the sender. Fanout is ignored.
class FloodSelector final : public TargetSelector {
 public:
  void selectTargets(const OverlaySnapshot& overlay, NodeId self,
                     NodeId receivedFrom, std::uint32_t fanout, Rng& rng,
                     std::vector<NodeId>& out) const override;
  std::string_view name() const override { return "Flood"; }
};

/// RANDCAST (Fig. 2): up to F distinct random r-links, never the sender.
class RandCastSelector final : public TargetSelector {
 public:
  void selectTargets(const OverlaySnapshot& overlay, NodeId self,
                     NodeId receivedFrom, std::uint32_t fanout, Rng& rng,
                     std::vector<NodeId>& out) const override;
  std::string_view name() const override { return "RandCast"; }
};

/// Hybrid rule of §5 / Fig. 5: all d-links except the sender, then
/// max(0, F - |targets|) distinct random r-links (excluding sender,
/// self and already-chosen targets). With single-ring d-links this *is*
/// RINGCAST.
class HybridSelector : public TargetSelector {
 public:
  void selectTargets(const OverlaySnapshot& overlay, NodeId self,
                     NodeId receivedFrom, std::uint32_t fanout, Rng& rng,
                     std::vector<NodeId>& out) const override;
  std::string_view name() const override { return "Hybrid"; }
};

/// RINGCAST — the paper's protocol: HybridSelector over a snapshot whose
/// d-links are the bidirectional ring neighbours.
class RingCastSelector final : public HybridSelector {
 public:
  std::string_view name() const override { return "RingCast"; }
};

/// Multi-ring RINGCAST (§8 extension): HybridSelector over a snapshot
/// whose d-links union several rings.
class MultiRingCastSelector final : public HybridSelector {
 public:
  std::string_view name() const override { return "MultiRingCast"; }
};

// -- span-based primitives ---------------------------------------------
//
// The selector classes above work on frozen snapshots; live dissemination
// (cast/live.hpp) picks targets from a node's *current* views. Both share
// these primitives, so Fig. 2 / Fig. 5 semantics exist in exactly one
// place.

/// Appends up to `want` distinct random picks from `pool` to `out`,
/// skipping `exclude`, `self`, and anything already in `out`.
void appendRandomTargets(std::span<const NodeId> pool, NodeId self,
                         NodeId exclude, std::size_t want, Rng& rng,
                         std::vector<NodeId>& out);

/// The RANDCAST rule (Fig. 2) over explicit link sets.
void selectRandomTargets(std::span<const NodeId> rlinks, NodeId self,
                         NodeId receivedFrom, std::uint32_t fanout, Rng& rng,
                         std::vector<NodeId>& out);

/// The hybrid rule (§5 / Fig. 5) over explicit link sets: all d-links
/// except the sender, topped up to `fanout` with random r-links.
void selectHybridTargets(std::span<const NodeId> rlinks,
                         std::span<const NodeId> dlinks, NodeId self,
                         NodeId receivedFrom, std::uint32_t fanout, Rng& rng,
                         std::vector<NodeId>& out);

/// The flood rule (§3) over explicit link sets: every d-link, then every
/// r-link, deduplicated and never back to the sender (no fanout cap).
void floodTargets(std::span<const NodeId> rlinks,
                  std::span<const NodeId> dlinks, NodeId self,
                  NodeId receivedFrom, std::vector<NodeId>& out);

}  // namespace vs07::cast
