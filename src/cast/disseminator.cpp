#include "cast/disseminator.hpp"

#include <utility>

#include "common/expect.hpp"

namespace vs07::cast {

DeliveryReport disseminate(const OverlaySnapshot& overlay,
                           const TargetSelector& selector, NodeId origin,
                           const DisseminationParams& params) {
  VS07_EXPECT(origin < overlay.totalIds());
  VS07_EXPECT(overlay.isAlive(origin));
  VS07_EXPECT(params.fanout >= 1);

  DeliveryReport report;
  report.fanout = params.fanout;
  report.origin = origin;
  report.aliveTotal = overlay.aliveCount();
  if (params.recordLoad) {
    report.forwardsPerNode.assign(overlay.totalIds(), 0);
    report.receivedPerNode.assign(overlay.totalIds(), 0);
  }

  Rng rng(params.seed);
  std::vector<std::uint8_t> notified(overlay.totalIds(), 0);

  // Frontier entries: (node first notified last hop, who sent to it).
  struct Hop {
    NodeId node;
    NodeId from;
  };
  std::vector<Hop> frontier{{origin, kNoNode}};
  std::vector<Hop> next;
  std::vector<NodeId> targets;

  notified[origin] = 1;
  report.notified = 1;
  report.newlyNotifiedPerHop.push_back(1);  // hop 0: the origin

  std::uint32_t hop = 0;
  while (!frontier.empty()) {
    next.clear();
    std::uint64_t newlyNotified = 0;
    for (const auto& [node, from] : frontier) {
      selector.selectTargets(overlay, node, from, params.fanout, rng,
                             targets);
      if (params.recordLoad)
        report.forwardsPerNode[node] +=
            static_cast<std::uint32_t>(targets.size());
      for (const NodeId target : targets) {
        ++report.messagesTotal;
        if (!overlay.isAlive(target)) {
          ++report.messagesToDead;
          continue;
        }
        if (params.recordLoad) ++report.receivedPerNode[target];
        if (notified[target]) {
          ++report.messagesRedundant;
          continue;
        }
        notified[target] = 1;
        ++report.messagesVirgin;
        ++report.notified;
        ++newlyNotified;
        next.push_back({target, node});
      }
    }
    ++hop;
    if (newlyNotified > 0) {  // newlyNotified == 0 implies next is empty
      report.newlyNotifiedPerHop.push_back(newlyNotified);
      report.lastHop = hop;
    }
    frontier.swap(next);
  }

  for (const NodeId id : overlay.aliveIds())
    if (!notified[id]) report.missed.push_back(id);
  report.pushDelivered = report.notified;
  VS07_ENSURE(report.notified + report.missed.size() == report.aliveTotal);
  VS07_ENSURE(report.messagesTotal == report.messagesVirgin +
                                          report.messagesRedundant +
                                          report.messagesToDead);
  return report;
}

}  // namespace vs07::cast
