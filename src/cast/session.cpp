#include "cast/session.hpp"

#include <utility>

#include "common/expect.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"

namespace vs07::cast {

namespace {

LiveCast::Params liveParams(const CastOptions& options) {
  LiveCast::Params params;
  params.fanout = options.fanout;
  params.flood = options.strategy == Strategy::kFlood;
  // Push-only strategies never pull; kPushPull pulls at the configured
  // interval (0 would silently degrade to pure push, so reject it).
  if (options.strategy == Strategy::kPushPull) {
    VS07_EXPECT(options.pullInterval >= 1);
    params.pullInterval = options.pullInterval;
  } else {
    params.pullInterval = 0;
  }
  params.digestLength = options.digestLength;
  params.bufferCapacity = options.bufferCapacity;
  params.pullBudget = options.pullBudget;
  params.maxTrackedMessages = options.maxTrackedMessages;
  params.completedLingerTicks = options.completedLingerTicks;
  params.retainedSummaries = options.retainedSummaries;
  params.windowedPull = options.windowedPull;
  return params;
}

}  // namespace

CastSession::CastSession(CastOptions options)
    : options_(options), rng_(options.seed) {
  VS07_EXPECT(options_.fanout >= 1);
}

// -- SnapshotSession -----------------------------------------------------

SnapshotSession::SnapshotSession(OverlaySnapshot overlay, CastOptions options)
    : CastSession(options), overlay_(std::move(overlay)) {
  VS07_EXPECT(options_.strategy != Strategy::kPushPull &&
              "pull recovery needs a transport: use a LiveSession");
  VS07_EXPECT(overlay_.aliveCount() > 0);
}

DeliveryReport SnapshotSession::publish(NodeId origin) {
  DisseminationParams params;
  params.fanout = options_.fanout;
  params.seed = rng_();
  params.recordLoad = options_.recordLoad;
  DeliveryReport report =
      disseminate(overlay_, selectorFor(options_.strategy), origin, params);
  report.strategy = options_.strategy;
  return report;
}

DeliveryReport SnapshotSession::publishFromRandom() {
  return publish(overlay_.aliveIds()[rng_.below(overlay_.aliveIds().size())]);
}

// -- LiveSession ---------------------------------------------------------

LiveSession::LiveSession(sim::Network& network, net::Transport& transport,
                         sim::MessageRouter& router, sim::Engine& engine,
                         const gossip::Cyclon& cyclon,
                         const gossip::Vicinity* vicinity,
                         const gossip::MultiRing* rings, CastOptions options)
    : CastSession(options),
      network_(network),
      engine_(engine),
      live_(network, transport, router, cyclon,
            // kRandCast forwards over r-links only; every d-link strategy
            // wants ring neighbours — the multi-ring union when the
            // strategy asks for it and several rings exist.
            options.strategy == Strategy::kRandCast ? nullptr : vicinity,
            liveParams(options), options.seed ^ 0x6C697665ULL) {
  if (options.strategy == Strategy::kMultiRing) {
    VS07_EXPECT(rings != nullptr);
    // LiveCast picks d-links at forward time, so upgrading from ring 0
    // to the multi-ring union is safe before any publish.
    if (rings->ringCount() > 1) live_.useMultiRing(*rings);
  }
  live_.attachClock(engine_);
  engine_.addProtocol(live_);
}

DeliveryReport LiveSession::publish(NodeId origin) {
  Baseline baseline;
  baseline.pullRequests = live_.pullRequestsSent();
  if (options_.recordLoad) {
    baseline.forwards = live_.forwardsPerNode();
    baseline.received = live_.receivedPerNode();
  }
  const std::uint64_t dataId = live_.publish(origin);
  lastDataId_ = dataId;
  baselines_[dataId] = std::move(baseline);
  // Keep the per-publish baselines bounded alongside LiveCast's own
  // tracking: once an id has retired it can no longer be report()ed, so
  // its baseline is dead weight under a sustained publish rate.
  if (baselines_.size() > 2 * live_.params().maxTrackedMessages)
    std::erase_if(baselines_, [this](const auto& entry) {
      return !live_.isTracked(entry.first);
    });
  if (options_.settleCycles > 0) engine_.run(options_.settleCycles);
  return report(dataId);
}

DeliveryReport LiveSession::publishFromRandom() {
  return publish(network_.randomAlive(rng_));
}

DeliveryReport LiveSession::report(std::uint64_t dataId) const {
  const auto it = baselines_.find(dataId);
  VS07_EXPECT(it != baselines_.end() && "unknown dataId: publish it first");
  return buildReport(dataId, it->second);
}

DeliveryReport LiveSession::buildReport(std::uint64_t dataId,
                                        const Baseline& baseline) const {
  const LiveMessageStats& stats = live_.stats(dataId);

  DeliveryReport report;
  report.strategy = options_.strategy;
  report.fanout = options_.fanout;
  report.origin = stats.origin;
  report.aliveTotal = network_.aliveCount();
  report.notified = 0;  // recomputed over the *currently* alive set below
  report.pushDelivered = stats.pushDelivered;
  report.pullDelivered = stats.pullDelivered;
  report.newlyNotifiedPerHop = stats.newlyNotifiedPerHop;
  report.lastHop = stats.lastHop;
  report.messagesTotal = stats.messagesSent;
  report.messagesRedundant = stats.redundantDeliveries;
  report.messagesToDead = stats.messagesToDead;
  // Virgin = first deliveries to alive nodes = everyone notified except
  // the origin (which delivers to itself without a message).
  report.messagesVirgin = stats.delivered() > 0 ? stats.delivered() - 1 : 0;
  report.pullRequests = live_.pullRequestsSent() - baseline.pullRequests;

  for (const NodeId id : network_.aliveIds()) {
    if (live_.hasDelivered(dataId, id))
      ++report.notified;
    else
      report.missed.push_back(id);
  }

  if (options_.recordLoad) {
    const auto diff = [](const std::vector<std::uint32_t>& now,
                         const std::vector<std::uint32_t>& before) {
      std::vector<std::uint32_t> delta(now.size(), 0);
      for (std::size_t i = 0; i < now.size(); ++i)
        delta[i] = now[i] - (i < before.size() ? before[i] : 0);
      return delta;
    };
    report.forwardsPerNode = diff(live_.forwardsPerNode(), baseline.forwards);
    report.receivedPerNode = diff(live_.receivedPerNode(), baseline.received);
  }
  return report;
}

}  // namespace vs07::cast
