// Hop-synchronous dissemination engine and its measurement report.
//
// Reproduces the paper's dissemination model (§7): the origin's send is
// hop 1's deliveries; each hop, every node that was first notified in the
// previous hop forwards to the targets its selector picks. Uniform latency
// is assumed — the paper argues (and §7.1 verifies) this does not change
// any macroscopic metric. Nodes forward a message exactly once (first
// reception); duplicate receptions are counted as redundant overhead.
#pragma once

#include <cstdint>
#include <vector>

#include "cast/selector.hpp"
#include "cast/snapshot.hpp"
#include "common/rng.hpp"
#include "net/node_id.hpp"

namespace vs07::cast {

/// Knobs of one dissemination run.
struct DisseminationParams {
  /// The system-wide fanout F.
  std::uint32_t fanout = 2;
  /// Seed for the random component of target selection.
  std::uint64_t seed = 1;
  /// Record per-node forwarded/received counters (load distribution).
  bool recordLoad = false;
};

/// Everything measured during one dissemination (§2's metrics).
struct DisseminationReport {
  std::uint32_t fanout = 0;
  NodeId origin = kNoNode;

  /// Alive nodes at freeze time — the hit-ratio denominator.
  std::uint64_t aliveTotal = 0;
  /// Alive nodes that received (or originated) the message.
  std::uint64_t notified = 0;

  /// newlyNotifiedPerHop[h] = nodes first notified at hop h
  /// (index 0 is the origin itself).
  std::vector<std::uint64_t> newlyNotifiedPerHop;

  /// Message overhead split (Fig. 8): total = virgin + redundant + toDead.
  std::uint64_t messagesTotal = 0;
  std::uint64_t messagesVirgin = 0;     ///< first delivery to an alive node
  std::uint64_t messagesRedundant = 0;  ///< duplicate to an alive node
  std::uint64_t messagesToDead = 0;     ///< absorbed by dead nodes

  /// Hop at which the last node was notified (dissemination latency).
  std::uint32_t lastHop = 0;

  /// Alive nodes never notified (the misses behind Figs. 6/9/11/13).
  std::vector<NodeId> missed;

  /// Per-node load counters, sized totalIds; filled when recordLoad.
  std::vector<std::uint32_t> forwardsPerNode;
  std::vector<std::uint32_t> receivedPerNode;

  bool complete() const noexcept { return notified == aliveTotal; }

  /// Miss ratio in percent, the paper's headline metric
  /// (MissRatio = 1 - HitRatio).
  double missRatioPercent() const noexcept {
    if (aliveTotal == 0) return 0.0;
    return 100.0 *
           static_cast<double>(aliveTotal - notified) /
           static_cast<double>(aliveTotal);
  }

  /// Percentage of alive nodes *not yet* reached after `hop` completes —
  /// the y-axis of Figs. 7/10.
  double percentNotReachedAfterHop(std::uint32_t hop) const noexcept;
};

/// Runs one dissemination from `origin` (must be alive) over a frozen
/// overlay. Deterministic given (overlay, selector, origin, params).
DisseminationReport disseminate(const OverlaySnapshot& overlay,
                                const TargetSelector& selector, NodeId origin,
                                const DisseminationParams& params);

}  // namespace vs07::cast
