// Hop-synchronous dissemination engine over frozen overlays.
//
// Reproduces the paper's dissemination model (§7): the origin's send is
// hop 1's deliveries; each hop, every node that was first notified in the
// previous hop forwards to the targets its selector picks. Uniform latency
// is assumed — the paper argues (and §7.1 verifies) this does not change
// any macroscopic metric. Nodes forward a message exactly once (first
// reception); duplicate receptions are counted as redundant overhead.
//
// This is the internal engine behind cast::SnapshotSession — experiment
// code should normally go through the Scenario/CastSession API
// (analysis/scenario.hpp, cast/session.hpp) rather than call it directly.
#pragma once

#include <cstdint>

#include "cast/report.hpp"
#include "cast/selector.hpp"
#include "cast/snapshot.hpp"
#include "common/rng.hpp"
#include "net/node_id.hpp"

namespace vs07::cast {

/// Knobs of one dissemination run.
struct DisseminationParams {
  /// The system-wide fanout F.
  std::uint32_t fanout = 2;
  /// Seed for the random component of target selection.
  std::uint64_t seed = 1;
  /// Record per-node forwarded/received counters (load distribution).
  bool recordLoad = false;
};

/// Runs one dissemination from `origin` (must be alive) over a frozen
/// overlay. Deterministic given (overlay, selector, origin, params). The
/// returned report's `strategy` field is left at its default; sessions
/// stamp it.
DeliveryReport disseminate(const OverlaySnapshot& overlay,
                           const TargetSelector& selector, NodeId origin,
                           const DisseminationParams& params);

}  // namespace vs07::cast
