// Rate-driven publishing — the sustained-traffic workload generator.
//
// Every paper experiment (and every fig bench) disseminates one message
// per run; production means a publish *rate*. A TrafficSource is a
// sim::Control that keeps that rate flowing through a LiveCast: at the
// end of each cycle it draws the coming cycle's message count — Poisson
// (memoryless arrivals, the classic open-loop workload) or a
// deterministic fixed-interval accumulator — and schedules one
// delivery-priority event per message at a tick inside that cycle, each
// publishing from a uniformly random *alive* origin chosen at fire time
// (so churn never publishes from the dead). Everything rides the engine
// queue, so a sustained run interleaves publishes, gossip timers, and
// deliveries in one deterministic order.
#pragma once

#include <cstdint>
#include <functional>

#include "cast/live.hpp"
#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"

namespace vs07::cast {

class TrafficSource final : public sim::Control {
 public:
  struct Params {
    /// Expected publishes per cycle across the whole population.
    double messagesPerCycle = 1.0;
    /// true: per-cycle counts are Poisson(messagesPerCycle); false: a
    /// deterministic accumulator emits evenly spaced publishes at
    /// exactly the configured rate (fractional rates carry over).
    bool poisson = true;
    /// Stop after this many publishes (0 = unlimited).
    std::uint64_t maxMessages = 0;
  };

  /// Schedules the first cycle's publishes immediately; the caller must
  /// also register it as a control (engine.addControl) so every later
  /// cycle is primed at the end of the one before it. All references
  /// must outlive the source.
  TrafficSource(sim::Engine& engine, sim::Network& network, LiveCast& live,
                Params params, std::uint64_t seed);

  TrafficSource(const TrafficSource&) = delete;
  TrafficSource& operator=(const TrafficSource&) = delete;

  // sim::Control — primes the next cycle's publish events.
  void execute(std::uint64_t cycle) override;

  /// Messages actually published so far.
  std::uint64_t published() const noexcept { return published_; }

  /// Publishes scheduled (>= published(): scheduled events may not have
  /// fired yet).
  std::uint64_t scheduled() const noexcept { return scheduled_; }

  /// Invoked after each publish: (dataId, origin, tick). Benches use it
  /// to stamp per-message publish ticks for latency percentiles.
  using PublishHook =
      std::function<void(std::uint64_t, NodeId, std::uint64_t)>;
  void setPublishHook(PublishHook hook) { hook_ = std::move(hook); }

  const Params& params() const noexcept { return params_; }

 private:
  /// Draws the coming cycle's count and schedules its publish events.
  void primeNextCycle();
  std::uint32_t drawCount();
  void fire();

  sim::Engine& engine_;
  sim::Network& network_;
  LiveCast& live_;
  Params params_;
  Rng rng_;
  PublishHook hook_;
  /// Fixed-interval mode: fractional messages carried to the next cycle.
  double carry_ = 0.0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t published_ = 0;
};

/// Knuth's Poisson sampler, chunked so exp(-mean) never underflows for
/// large means (split into <= 30-mean pieces; a Poisson sum of Poissons
/// is exact). Exposed for tests.
std::uint32_t samplePoisson(Rng& rng, double mean);

}  // namespace vs07::cast
