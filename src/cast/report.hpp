// DeliveryReport — the one measurement record every dissemination
// produces, whether it ran over a frozen snapshot (cast::disseminate) or
// through the transport against live views (cast::LiveCast). It merges
// the formerly separate DisseminationReport and LiveMessageStats: per-hop
// coverage, miss ratio, the push/pull/redundant/to-dead message split,
// and the per-node load counters, so experiment code aggregates one type
// regardless of which execution path produced it.
#pragma once

#include <cstdint>
#include <vector>

#include "cast/strategy.hpp"
#include "net/node_id.hpp"

namespace vs07::cast {

/// Everything measured about one message's dissemination (§2's metrics).
struct DeliveryReport {
  /// Which forwarding rule produced this report.
  Strategy strategy = Strategy::kRingCast;
  std::uint32_t fanout = 0;
  NodeId origin = kNoNode;

  /// Alive nodes at measurement time — the hit-ratio denominator.
  std::uint64_t aliveTotal = 0;
  /// Alive nodes that received (or originated) the message.
  std::uint64_t notified = 0;
  /// Of `notified`: nodes reached by the push wave (snapshot path: all).
  std::uint64_t pushDelivered = 0;
  /// Of `notified`: nodes backfilled later by anti-entropy pull.
  std::uint64_t pullDelivered = 0;

  /// newlyNotifiedPerHop[h] = nodes first notified at push hop h
  /// (index 0 is the origin itself; pull deliveries are not hop-tagged).
  std::vector<std::uint64_t> newlyNotifiedPerHop;

  /// Message overhead split (Fig. 8): total = virgin + redundant + toDead.
  std::uint64_t messagesTotal = 0;
  std::uint64_t messagesVirgin = 0;     ///< first delivery to an alive node
  std::uint64_t messagesRedundant = 0;  ///< duplicate to an alive node
  std::uint64_t messagesToDead = 0;     ///< absorbed by dead nodes
  /// PullRequest digests sent while this report was being measured
  /// (live path only; the §8 pull-overhead numerator).
  std::uint64_t pullRequests = 0;

  /// Push hop at which the last node was notified (dissemination latency).
  std::uint32_t lastHop = 0;

  /// Alive nodes never notified (the misses behind Figs. 6/9/11/13).
  std::vector<NodeId> missed;

  /// Per-node load counters, sized totalIds; filled when load recording
  /// was requested (empty otherwise).
  std::vector<std::uint32_t> forwardsPerNode;
  std::vector<std::uint32_t> receivedPerNode;

  bool complete() const noexcept { return notified == aliveTotal; }

  /// Miss ratio in percent, the paper's headline metric
  /// (MissRatio = 1 - HitRatio).
  double missRatioPercent() const noexcept {
    if (aliveTotal == 0) return 0.0;
    return 100.0 *
           static_cast<double>(aliveTotal - notified) /
           static_cast<double>(aliveTotal);
  }

  /// Percentage of alive nodes *not yet* reached after push hop `hop`
  /// completes — the y-axis of Figs. 7/10.
  double percentNotReachedAfterHop(std::uint32_t hop) const noexcept;
};

}  // namespace vs07::cast
