#include "cast/live.hpp"

#include <algorithm>

#include "cast/selector.hpp"
#include "common/expect.hpp"

namespace vs07::cast {

MessageStore::MessageStore(std::uint32_t capacity) : capacity_(capacity) {
  VS07_EXPECT(capacity > 0);
}

bool MessageStore::hasSeen(std::uint64_t dataId) const {
  return seen_.contains(dataId);
}

void MessageStore::remember(std::uint64_t dataId) {
  if (hasSeen(dataId)) return;
  buffer_.push_back(dataId);
  seen_.emplace(dataId, 1);
  if (buffer_.size() > capacity_) {
    seen_.erase(buffer_.front());
    buffer_.pop_front();
  }
}

std::vector<std::uint64_t> MessageStore::digest(std::size_t limit) const {
  std::vector<std::uint64_t> out;
  digestInto(limit, out);
  return out;
}

void MessageStore::digestInto(std::size_t limit,
                              std::vector<std::uint64_t>& out) const {
  const std::size_t take = std::min(limit, buffer_.size());
  out.assign(buffer_.end() - static_cast<std::ptrdiff_t>(take),
             buffer_.end());
}

void MessageStore::clear() {
  buffer_.clear();
  seen_.clear();
}

LiveCast::LiveCast(sim::Network& network, net::Transport& transport,
                   sim::MessageRouter& router, const gossip::Cyclon& cyclon,
                   const gossip::Vicinity* vicinity, Params params,
                   std::uint64_t seed)
    : network_(network),
      transport_(transport),
      cyclon_(cyclon),
      vicinity_(vicinity),
      params_(params),
      rng_(seed) {
  registerHandlers(router);
}

void LiveCast::registerHandlers(sim::MessageRouter& router) {
  VS07_EXPECT(params_.fanout >= 1);
  VS07_EXPECT(params_.digestLength >= 1);
  VS07_EXPECT(params_.bufferCapacity >= 1);
  VS07_EXPECT(params_.pullBudget >= 1);
  router.route(net::MessageKind::Data,
               [this](NodeId to, const net::Message& m) {
                 handleData(to, m);
               });
  router.route(net::MessageKind::PullRequest,
               [this](NodeId to, const net::Message& m) {
                 handlePullRequest(to, m);
               });
  network_.addObserver(*this);
}

void LiveCast::onSpawn(NodeId node) {
  if (node >= stores_.size()) {
    stores_.resize(node + 1, MessageStore(params_.bufferCapacity));
    stepCount_.resize(node + 1, 0);
    forwardsPerNode_.resize(node + 1, 0);
    receivedPerNode_.resize(node + 1, 0);
  }
  stores_[node] = MessageStore(params_.bufferCapacity);
  stepCount_[node] = 0;
}

void LiveCast::onKill(NodeId node) { stores_[node].clear(); }

std::uint64_t LiveCast::publish(NodeId origin) {
  VS07_EXPECT(network_.isAlive(origin));
  const std::uint64_t dataId = nextDataId_++;
  auto& stats = stats_[dataId];
  stats.dataId = dataId;
  stats.origin = origin;
  if (clock_ != nullptr) {
    stats.publishedAtTick = clock_->nowTick();
    stats.lastDeliveryTick = stats.publishedAtTick;
  }
  deliveredTo_[dataId].assign(network_.totalCreated(), 0);
  deliverLocally(origin, dataId, /*viaPull=*/false, /*hop=*/0);
  forward(origin, kNoNode, dataId, /*hop=*/0);
  drainOutbox();
  return dataId;
}

void LiveCast::step(NodeId self) {
  ++stepCount_[self];
  if (params_.pullInterval == 0) return;
  if (stepCount_[self] % params_.pullInterval != 0) return;

  const auto& view = cyclon_.view(self);
  if (view.empty()) return;
  const NodeId target = view.at(rng_.below(view.size())).node;

  net::Message& request = pullScratch_;
  request.reset();
  request.kind = net::MessageKind::PullRequest;
  request.from = self;
  stores_[self].digestInto(params_.digestLength, request.ids);
  ++pullsSent_;
  transport_.send(target, std::move(request));
  drainOutbox();  // pull answers may have queued forwards
}

void LiveCast::handleData(NodeId self, const net::Message& msg) {
  const bool viaPull = (msg.flags & net::kFlagPullAnswer) != 0;
  receivedPerNode_[self] += 1;
  auto& store = stores_[self];
  if (store.hasSeen(msg.dataId)) {
    ++redundant_;
    auto it = stats_.find(msg.dataId);
    if (it != stats_.end()) ++it->second.redundantDeliveries;
    return;
  }
  store.remember(msg.dataId);
  deliverLocally(self, msg.dataId, viaPull, msg.hop);
  forward(self, msg.from, msg.dataId, msg.hop);
}

void LiveCast::deliverLocally(NodeId self, std::uint64_t dataId,
                              bool viaPull, std::uint32_t hop) {
  stores_[self].remember(dataId);
  // Before the stats lookup: in a multi-process run only the origin owns
  // stats for an id, but every process must see its own deliveries.
  if (deliveryHook_) deliveryHook_(self, dataId, hop, viaPull);
  auto statsIt = stats_.find(dataId);
  if (statsIt == stats_.end()) return;  // unknown id: nothing to account
  auto& stats = statsIt->second;
  auto& bitmap = deliveredTo_[dataId];
  if (bitmap.size() < network_.totalCreated())
    bitmap.resize(network_.totalCreated(), 0);
  if (bitmap[self]) {
    // Re-delivery after buffer eviction: the node already counted.
    ++redundant_;
    ++stats.redundantDeliveries;
    return;
  }
  bitmap[self] = 1;
  if (clock_ != nullptr && clock_->nowTick() > stats.lastDeliveryTick)
    stats.lastDeliveryTick = clock_->nowTick();
  if (viaPull) {
    ++stats.pullDelivered;
  } else {
    ++stats.pushDelivered;
    if (stats.newlyNotifiedPerHop.size() <= hop)
      stats.newlyNotifiedPerHop.resize(hop + 1, 0);
    ++stats.newlyNotifiedPerHop[hop];
    if (hop > stats.lastHop) stats.lastHop = hop;
  }
}

void LiveCast::forward(NodeId self, NodeId receivedFrom,
                       std::uint64_t dataId, std::uint32_t hop) {
  // Targets come from the node's *current* views: r-links from CYCLON,
  // d-links from the ring when a VICINITY layer is attached (Fig. 5),
  // otherwise pure RANDCAST (Fig. 2). The link scratch is consumed
  // before the first enqueue; the target list lives until the end of the
  // enqueue loop (which can re-enter forward() through a synchronous
  // transport), hence the per-depth buffer.
  std::vector<NodeId>& rlinks = rlinkScratch_;
  rlinks.clear();
  for (const auto& e : cyclon_.view(self).entries())
    rlinks.push_back(e.node);

  if (forwardDepth_ == targetScratch_.size()) targetScratch_.emplace_back();
  std::vector<NodeId>& targets = targetScratch_[forwardDepth_];
  ++forwardDepth_;
  if (vicinity_ != nullptr || multiRing_ != nullptr) {
    std::vector<NodeId>& dlinks = dlinkScratch_;
    dlinks.clear();
    auto addNeighbors = [&dlinks](const gossip::RingNeighbors& ring) {
      auto add = [&dlinks](NodeId n) {
        if (n != kNoNode &&
            std::find(dlinks.begin(), dlinks.end(), n) == dlinks.end())
          dlinks.push_back(n);
      };
      add(ring.successor);
      add(ring.predecessor);
    };
    if (multiRing_ != nullptr) {
      for (std::uint32_t r = 0; r < multiRing_->ringCount(); ++r)
        addNeighbors(multiRing_->ring(r).ringNeighbors(self));
    } else {
      addNeighbors(vicinity_->ringNeighbors(self));
    }
    if (params_.flood) {
      floodTargets(rlinks, dlinks, self, receivedFrom, targets);
    } else {
      selectHybridTargets(rlinks, dlinks, self, receivedFrom, params_.fanout,
                          rng_, targets);
    }
  } else if (params_.flood) {
    dlinkScratch_.clear();  // no d-link source attached: pure r-link flood
    floodTargets(rlinks, dlinkScratch_, self, receivedFrom, targets);
  } else {
    selectRandomTargets(rlinks, self, receivedFrom, params_.fanout, rng_,
                        targets);
  }
  forwardsPerNode_[self] += static_cast<std::uint32_t>(targets.size());
  for (const NodeId target : targets)
    enqueueData(target, self, dataId, hop + 1, /*viaPull=*/false);
  --forwardDepth_;
}

void LiveCast::enqueueData(NodeId to, NodeId from, std::uint64_t dataId,
                           std::uint32_t hop, bool viaPull) {
  if (auto it = stats_.find(dataId); it != stats_.end()) {
    ++it->second.messagesSent;
    if (!network_.isAlive(to)) ++it->second.messagesToDead;
  }
  net::Message msg;
  msg.kind = net::MessageKind::Data;
  msg.from = from;
  msg.dataId = dataId;
  msg.hop = hop;
  if (viaPull) {
    msg.flags |= net::kFlagPullAnswer;
    ++pullAnswers_;
  } else {
    ++pushSent_;
  }
  outbox_.push_back({to, std::move(msg)});
  if (!draining_) drainOutbox();
}

void LiveCast::drainOutbox() {
  if (draining_) return;
  draining_ = true;
  while (outboxHead_ < outbox_.size()) {
    // Compact the drained prefix once it dominates the buffer, so peak
    // memory tracks the outstanding backlog (what the frontier still
    // owes), not the total message count of the wave. Amortized O(1)
    // per message thanks to the half-full threshold.
    if (outboxHead_ >= 1024 && outboxHead_ * 2 >= outbox_.size()) {
      outbox_.erase(outbox_.begin(),
                    outbox_.begin() + static_cast<std::ptrdiff_t>(outboxHead_));
      outboxHead_ = 0;
    }
    // Moved out before sending: re-entrant enqueues may grow (and
    // reallocate) the outbox while the transport runs.
    Outgoing next = std::move(outbox_[outboxHead_]);
    ++outboxHead_;
    // Synchronous transports re-enter handleData -> enqueueData here;
    // those sends land on the queue instead of the call stack, so even a
    // node-by-node crawl along the whole ring stays at depth one.
    transport_.send(next.to, std::move(next.msg));
  }
  outbox_.clear();  // backlog-sized capacity retained for the next wave
  outboxHead_ = 0;
  draining_ = false;
}

void LiveCast::handlePullRequest(NodeId self, const net::Message& msg) {
  const auto& have = stores_[self].buffered();
  std::uint32_t sent = 0;
  // Newest first: fresh messages are the likeliest gaps worth filling.
  for (auto it = have.rbegin();
       it != have.rend() && sent < params_.pullBudget; ++it) {
    const std::uint64_t dataId = *it;
    if (std::find(msg.ids.begin(), msg.ids.end(), dataId) != msg.ids.end())
      continue;
    enqueueData(msg.from, self, dataId, /*hop=*/0, /*viaPull=*/true);
    ++sent;
  }
}

const LiveMessageStats& LiveCast::stats(std::uint64_t dataId) const {
  const auto it = stats_.find(dataId);
  VS07_EXPECT(it != stats_.end());
  return it->second;
}

bool LiveCast::hasDelivered(std::uint64_t dataId, NodeId node) const {
  const auto it = deliveredTo_.find(dataId);
  if (it == deliveredTo_.end()) return false;
  return node < it->second.size() && it->second[node] != 0;
}

double LiveCast::missRatioPercentNow(std::uint64_t dataId) const {
  const auto it = deliveredTo_.find(dataId);
  VS07_EXPECT(it != deliveredTo_.end());
  const auto& bitmap = it->second;
  std::uint64_t deliveredAlive = 0;
  std::uint64_t alive = 0;
  for (const NodeId id : network_.aliveIds()) {
    ++alive;
    deliveredAlive += id < bitmap.size() && bitmap[id] ? 1 : 0;
  }
  if (alive == 0) return 0.0;
  return 100.0 * static_cast<double>(alive - deliveredAlive) /
         static_cast<double>(alive);
}

}  // namespace vs07::cast
