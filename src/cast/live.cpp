#include "cast/live.hpp"

#include <algorithm>

#include "cast/selector.hpp"
#include "common/expect.hpp"

namespace vs07::cast {

MessageStore::MessageStore(std::uint32_t capacity) : capacity_(capacity) {
  VS07_EXPECT(capacity > 0);
}

bool MessageStore::hasSeen(std::uint64_t dataId) const {
  return seen_.contains(dataId);
}

void MessageStore::remember(std::uint64_t dataId) {
  if (hasSeen(dataId)) return;
  buffer_.push_back(dataId);
  seen_.emplace(dataId, 1);
  if (buffer_.size() > capacity_) {
    maxEvicted_ = std::max(maxEvicted_, buffer_.front());
    seen_.erase(buffer_.front());
    buffer_.pop_front();
    evicted_ = true;
  }
}

std::vector<std::uint64_t> MessageStore::digest(std::size_t limit) const {
  std::vector<std::uint64_t> out;
  digestInto(limit, out);
  return out;
}

void MessageStore::digestInto(std::size_t limit,
                              std::vector<std::uint64_t>& out) const {
  const std::size_t take = std::min(limit, buffer_.size());
  out.assign(buffer_.end() - static_cast<std::ptrdiff_t>(take),
             buffer_.end());
}

std::size_t MessageStore::windowInto(std::size_t start, std::size_t limit,
                                     std::vector<std::uint64_t>& out) const {
  out.clear();
  if (start >= buffer_.size()) return 0;
  const std::size_t take = std::min(limit, buffer_.size() - start);
  const auto first = buffer_.begin() + static_cast<std::ptrdiff_t>(start);
  out.assign(first, first + static_cast<std::ptrdiff_t>(take));
  return take;
}

void MessageStore::clear() {
  buffer_.clear();
  seen_.clear();
  evicted_ = false;
  maxEvicted_ = 0;
}

LiveCast::LiveCast(sim::Network& network, net::Transport& transport,
                   sim::MessageRouter& router, const gossip::Cyclon& cyclon,
                   const gossip::Vicinity* vicinity, Params params,
                   std::uint64_t seed)
    : network_(network),
      transport_(transport),
      cyclon_(cyclon),
      vicinity_(vicinity),
      params_(params),
      rng_(seed) {
  registerHandlers(router);
}

void LiveCast::registerHandlers(sim::MessageRouter& router) {
  VS07_EXPECT(params_.fanout >= 1);
  VS07_EXPECT(params_.digestLength >= 1);
  VS07_EXPECT(params_.bufferCapacity >= 1);
  VS07_EXPECT(params_.pullBudget >= 1);
  VS07_EXPECT(params_.maxTrackedMessages >= 1);
  router.route(net::MessageKind::Data,
               [this](NodeId to, const net::Message& m) {
                 handleData(to, m);
               });
  router.route(net::MessageKind::PullRequest,
               [this](NodeId to, const net::Message& m) {
                 handlePullRequest(to, m);
               });
  network_.addObserver(*this);
}

void LiveCast::onReserve(NodeId count) {
  stores_.reserve(count);
  stepCount_.reserve(count);
  pullWindowPos_.reserve(count);
  forwardsPerNode_.reserve(count);
  receivedPerNode_.reserve(count);
}

void LiveCast::onSpawn(NodeId node) {
  if (node >= stores_.size()) {
    stores_.resize(node + 1, MessageStore(params_.bufferCapacity));
    stepCount_.resize(node + 1, 0);
    pullWindowPos_.resize(node + 1, 0);
    forwardsPerNode_.resize(node + 1, 0);
    receivedPerNode_.resize(node + 1, 0);
  }
  stores_[node] = MessageStore(params_.bufferCapacity);
  stepCount_[node] = 0;
  pullWindowPos_[node] = 0;
}

void LiveCast::onKill(NodeId node) { stores_[node].clear(); }

std::uint64_t LiveCast::liveBitmapBytes() const {
  std::uint64_t bytes = 0;
  for (const auto& [id, bitmap] : deliveredTo_) bytes += bitmap.size();
  return bytes;
}

void LiveCast::retire(std::uint64_t dataId, bool completed) {
  const auto statsIt = stats_.find(dataId);
  VS07_EXPECT(statsIt != stats_.end());
  LiveMessageStats& stats = statsIt->second;

  if (completed) {
    ++steady_.retiredCompleted;
  } else {
    ++steady_.retiredAgedOut;
  }
  const std::uint64_t spread = stats.spreadTicks();
  steady_.spreadTicksTotalRetired += spread;
  steady_.maxSpreadTicksRetired =
      std::max(steady_.maxSpreadTicksRetired, spread);

  if (params_.retainedSummaries > 0) {
    CompletedSummary summary;
    summary.dataId = stats.dataId;
    summary.origin = stats.origin;
    summary.delivered = stats.delivered();
    summary.pushDelivered = stats.pushDelivered;
    summary.pullDelivered = stats.pullDelivered;
    summary.redundantDeliveries = stats.redundantDeliveries;
    summary.messagesSent = stats.messagesSent;
    summary.newlyNotifiedPerHop = std::move(stats.newlyNotifiedPerHop);
    summary.lastHop = stats.lastHop;
    summary.publishedAtTick = stats.publishedAtTick;
    summary.spreadTicks = spread;
    summary.completed = completed;
    summaryById_[dataId] = std::move(summary);
    summaryOrder_.push_back(dataId);
    while (summaryOrder_.size() > params_.retainedSummaries) {
      summaryById_.erase(summaryOrder_.front());
      summaryOrder_.pop_front();
    }
  }

  stats_.erase(statsIt);
  if (const auto bmIt = deliveredTo_.find(dataId);
      bmIt != deliveredTo_.end()) {
    bitmapPool_.push_back(std::move(bmIt->second));
    deliveredTo_.erase(bmIt);
  }
  const auto orderIt =
      std::find(trackedOrder_.begin(), trackedOrder_.end(), dataId);
  if (orderIt != trackedOrder_.end()) trackedOrder_.erase(orderIt);
}

void LiveCast::reclaimTracked() {
  // Eager retirement of lingering completed messages (sustained mode).
  // Only the oldest tracked prefix is considered: completion is roughly
  // FIFO in publish order, and the hard cap below bounds the rest.
  if (params_.completedLingerTicks > 0 && clock_ != nullptr) {
    const std::uint64_t now = clock_->nowTick();
    while (!trackedOrder_.empty()) {
      const LiveMessageStats& front = stats_.at(trackedOrder_.front());
      if (!front.completed() ||
          now - front.completedAtTick < params_.completedLingerTicks)
        break;
      retire(front.dataId, /*completed=*/true);
    }
  }
  // Hard cap: make room for the next publish, preferring a victim whose
  // wave already finished; only when every tracked message is still
  // incomplete does the oldest age out with per-node state unresolved.
  while (stats_.size() >= params_.maxTrackedMessages) {
    std::uint64_t victim = trackedOrder_.front();
    for (const std::uint64_t id : trackedOrder_) {
      if (stats_.at(id).completed()) {
        victim = id;
        break;
      }
    }
    retire(victim, stats_.at(victim).completed());
  }
}

std::uint64_t LiveCast::publish(NodeId origin) {
  VS07_EXPECT(network_.isAlive(origin));
  reclaimTracked();
  const std::uint64_t dataId = nextDataId_++;
  trackedOrder_.push_back(dataId);
  auto& stats = stats_[dataId];
  stats.dataId = dataId;
  stats.origin = origin;
  if (clock_ != nullptr) {
    stats.publishedAtTick = clock_->nowTick();
    stats.lastDeliveryTick = stats.publishedAtTick;
  }
  auto& bitmap = deliveredTo_[dataId];
  if (bitmap.empty() && !bitmapPool_.empty()) {
    bitmap = std::move(bitmapPool_.back());
    bitmapPool_.pop_back();
  }
  bitmap.assign(network_.totalCreated(), 0);
  ++steady_.published;
  steady_.peakTracked = std::max<std::uint64_t>(steady_.peakTracked,
                                                stats_.size());
  steady_.peakTrackedBitmapBytes =
      std::max(steady_.peakTrackedBitmapBytes, liveBitmapBytes());
  deliverLocally(origin, dataId, /*viaPull=*/false, /*hop=*/0,
                 /*recovery=*/false);
  forward(origin, kNoNode, dataId, /*hop=*/0, /*recovery=*/false);
  drainOutbox();
  return dataId;
}

void LiveCast::step(NodeId self) {
  ++stepCount_[self];
  if (params_.pullInterval == 0) return;
  if (stepCount_[self] % params_.pullInterval != 0) return;

  const auto& view = cyclon_.view(self);
  if (view.empty()) return;
  const NodeId target = view.at(rng_.below(view.size())).node;

  net::Message& request = pullScratch_;
  request.reset();
  request.kind = net::MessageKind::PullRequest;
  request.from = self;
  if (params_.windowedPull) {
    // Rotating window: advertise a digestLength-wide slice of the
    // buffer with explicit id bounds, advancing the slice every pull so
    // successive requests sweep the whole buffer. When the slice
    // reaches the newest end, the upper bound opens to +inf so brand-new
    // ids the peer holds are offered too; ids below the lower bound are
    // outside the requester's recovery horizon (evicted or never
    // wanted), which keeps steady-state pulls from resurrecting
    // long-evicted messages.
    request.flags |= net::kFlagWindowedDigest;
    auto& store = stores_[self];
    std::size_t& pos = pullWindowPos_[self];
    if (pos >= store.size()) pos = 0;
    const std::size_t took =
        store.windowInto(pos, params_.digestLength, windowScratch_);
    std::uint64_t lo = 0;
    std::uint64_t hi = ~std::uint64_t{0};
    if (took > 0) {
      const auto [minIt, maxIt] =
          std::minmax_element(windowScratch_.begin(), windowScratch_.end());
      // The slice minimum is a recovery horizon only once this buffer
      // has actually evicted; before that, "not buffered" provably
      // means "never received" (a joiner must be able to recover ids
      // older than everything it holds), so the window opens to 0.
      // After eviction the bound also clears the ids this buffer already
      // dropped (eviction is FIFO by arrival, so under latency jumble
      // an evicted id can exceed the slice minimum): peers must not
      // waste answers on ids handleData would drop as zombies anyway.
      if (store.hasEvicted())
        lo = std::max(*minIt, store.recoveryHorizon() + 1);
      if (pos + took < store.size()) hi = *maxIt;
      pos += took;
    } else {
      pos = 0;  // empty buffer: want anything — [0, +inf), no digest
    }
    request.ids.push_back(lo);
    request.ids.push_back(hi);
    request.ids.insert(request.ids.end(), windowScratch_.begin(),
                       windowScratch_.end());
  } else {
    stores_[self].digestInto(params_.digestLength, request.ids);
  }
  ++pullsSent_;
  transport_.send(target, std::move(request));
  drainOutbox();  // pull answers may have queued forwards
}

void LiveCast::handleData(NodeId self, const net::Message& msg) {
  const bool viaPull = (msg.flags & net::kFlagPullAnswer) != 0;
  const bool recovery =
      viaPull || (msg.flags & net::kFlagRecoveryWave) != 0;
  receivedPerNode_[self] += 1;
  auto& store = stores_[self];
  if (store.hasSeen(msg.dataId)) {
    ++redundant_;
    ++steady_.redundantDeliveries;
    auto it = stats_.find(msg.dataId);
    if (it != stats_.end()) ++it->second.redundantDeliveries;
    return;
  }
  // Recovery horizon, receiver side. The requester's windowed digest
  // bounds what peers may serve, but FIFO-by-arrival eviction is jumbled
  // across nodes, so an id this node already evicted can still fall
  // inside the window it advertised. Accepting such a pull-layer
  // re-delivery would re-buffer the id and evict another one early —
  // the positive feedback behind supercritical re-wave storms. Push
  // traffic is exempt: §8's "evicted ids are new again" semantics apply
  // to the origin wave's own stragglers, not to recovery repairs.
  if (recovery && msg.dataId <= store.recoveryHorizon()) {
    ++recoveryDropped_;
    return;
  }
  store.remember(msg.dataId);
  deliverLocally(self, msg.dataId, viaPull, msg.hop, recovery);
  forward(self, msg.from, msg.dataId, msg.hop, recovery);
}

void LiveCast::deliverLocally(NodeId self, std::uint64_t dataId,
                              bool viaPull, std::uint32_t hop,
                              bool recovery) {
  stores_[self].remember(dataId);
  // Before the stats lookup: in a multi-process run only the origin owns
  // stats for an id, but every process must see its own deliveries.
  if (deliveryHook_) deliveryHook_(self, dataId, hop, viaPull);
  auto statsIt = stats_.find(dataId);
  if (statsIt == stats_.end()) return;  // untracked id: no per-id account
  auto& stats = statsIt->second;
  auto& bitmap = deliveredTo_[dataId];
  if (bitmap.size() < network_.totalCreated())
    bitmap.resize(network_.totalCreated(), 0);
  if (bitmap[self]) {
    // Re-delivery after buffer eviction: the node already counted.
    ++redundant_;
    ++steady_.redundantDeliveries;
    ++stats.redundantDeliveries;
    return;
  }
  bitmap[self] = 1;
  ++steady_.firstDeliveries;
  if (clock_ != nullptr && clock_->nowTick() > stats.lastDeliveryTick)
    stats.lastDeliveryTick = clock_->nowTick();
  if (recovery) {
    // Pull answers and the re-wave they trigger: late recovery, not part
    // of the origin push wave — keep the hop histogram clean.
    ++stats.pullDelivered;
    ++steady_.pullDeliveries;
  } else {
    ++stats.pushDelivered;
    ++steady_.pushDeliveries;
    if (stats.newlyNotifiedPerHop.size() <= hop)
      stats.newlyNotifiedPerHop.resize(hop + 1, 0);
    ++stats.newlyNotifiedPerHop[hop];
    if (hop > stats.lastHop) stats.lastHop = hop;
  }
  if (!stats.completed() && stats.delivered() >= network_.aliveCount())
    stats.completedAtTick =
        clock_ != nullptr ? clock_->nowTick() : stats.lastDeliveryTick;
}

void LiveCast::forward(NodeId self, NodeId receivedFrom,
                       std::uint64_t dataId, std::uint32_t hop,
                       bool recovery) {
  // Targets come from the node's *current* views: r-links from CYCLON,
  // d-links from the ring when a VICINITY layer is attached (Fig. 5),
  // otherwise pure RANDCAST (Fig. 2). The link scratch is consumed
  // before the first enqueue; the target list lives until the end of the
  // enqueue loop (which can re-enter forward() through a synchronous
  // transport), hence the per-depth buffer.
  std::vector<NodeId>& rlinks = rlinkScratch_;
  rlinks.clear();
  for (const auto& e : cyclon_.view(self).entries())
    rlinks.push_back(e.node);

  if (forwardDepth_ == targetScratch_.size()) targetScratch_.emplace_back();
  std::vector<NodeId>& targets = targetScratch_[forwardDepth_];
  ++forwardDepth_;
  if (vicinity_ != nullptr || multiRing_ != nullptr) {
    std::vector<NodeId>& dlinks = dlinkScratch_;
    dlinks.clear();
    auto addNeighbors = [&dlinks](const gossip::RingNeighbors& ring) {
      auto add = [&dlinks](NodeId n) {
        if (n != kNoNode &&
            std::find(dlinks.begin(), dlinks.end(), n) == dlinks.end())
          dlinks.push_back(n);
      };
      add(ring.successor);
      add(ring.predecessor);
    };
    if (multiRing_ != nullptr) {
      for (std::uint32_t r = 0; r < multiRing_->ringCount(); ++r)
        addNeighbors(multiRing_->ring(r).ringNeighbors(self));
    } else {
      addNeighbors(vicinity_->ringNeighbors(self));
    }
    if (params_.flood) {
      floodTargets(rlinks, dlinks, self, receivedFrom, targets);
    } else {
      selectHybridTargets(rlinks, dlinks, self, receivedFrom, params_.fanout,
                          rng_, targets);
    }
  } else if (params_.flood) {
    dlinkScratch_.clear();  // no d-link source attached: pure r-link flood
    floodTargets(rlinks, dlinkScratch_, self, receivedFrom, targets);
  } else {
    selectRandomTargets(rlinks, self, receivedFrom, params_.fanout, rng_,
                        targets);
  }
  forwardsPerNode_[self] += static_cast<std::uint32_t>(targets.size());
  for (const NodeId target : targets)
    enqueueData(target, self, dataId, hop + 1, /*viaPull=*/false, recovery);
  --forwardDepth_;
}

void LiveCast::enqueueData(NodeId to, NodeId from, std::uint64_t dataId,
                           std::uint32_t hop, bool viaPull, bool recovery) {
  if (auto it = stats_.find(dataId); it != stats_.end()) {
    ++it->second.messagesSent;
    if (!network_.isAlive(to)) ++it->second.messagesToDead;
  }
  net::Message msg;
  msg.kind = net::MessageKind::Data;
  msg.from = from;
  msg.dataId = dataId;
  msg.hop = hop;
  if (viaPull) {
    msg.flags |= net::kFlagPullAnswer;
    ++pullAnswers_;
  } else {
    if (recovery) {
      msg.flags |= net::kFlagRecoveryWave;
      ++recoveryForwards_;
    }
    ++pushSent_;
  }
  outbox_.push_back({to, std::move(msg)});
  if (!draining_) drainOutbox();
}

void LiveCast::drainOutbox() {
  if (draining_) return;
  draining_ = true;
  while (outboxHead_ < outbox_.size()) {
    // Compact the drained prefix once it dominates the buffer, so peak
    // memory tracks the outstanding backlog (what the frontier still
    // owes), not the total message count of the wave. Amortized O(1)
    // per message thanks to the half-full threshold.
    if (outboxHead_ >= 1024 && outboxHead_ * 2 >= outbox_.size()) {
      outbox_.erase(outbox_.begin(),
                    outbox_.begin() + static_cast<std::ptrdiff_t>(outboxHead_));
      outboxHead_ = 0;
    }
    // Moved out before sending: re-entrant enqueues may grow (and
    // reallocate) the outbox while the transport runs.
    Outgoing next = std::move(outbox_[outboxHead_]);
    ++outboxHead_;
    // Synchronous transports re-enter handleData -> enqueueData here;
    // those sends land on the queue instead of the call stack, so even a
    // node-by-node crawl along the whole ring stays at depth one.
    transport_.send(next.to, std::move(next.msg));
  }
  outbox_.clear();  // backlog-sized capacity retained for the next wave
  outboxHead_ = 0;
  draining_ = false;
}

void LiveCast::handlePullRequest(NodeId self, const net::Message& msg) {
  const auto& have = stores_[self].buffered();
  if ((msg.flags & net::kFlagWindowedDigest) != 0) {
    // Windowed digest: [lo, hi] bounds in ids[0..1], the requester's
    // held ids in ids[2..]. Useful = buffered, inside the bounds, not in
    // the digest. The budget is spent on a *uniform random* subset of
    // the useful ids (random-useful selection, Sanghavi et al.): under
    // many concurrent flows every gap gets equal repair pressure, where
    // newest-first would starve old gaps behind a stream of fresh ids.
    if (msg.ids.size() < 2) return;  // malformed
    const std::uint64_t lo = msg.ids[0];
    const std::uint64_t hi = msg.ids[1];
    auto& candidates = pullCandidateScratch_;
    candidates.clear();
    for (const std::uint64_t dataId : have) {
      if (dataId < lo || dataId > hi) continue;
      if (std::find(msg.ids.begin() + 2, msg.ids.end(), dataId) !=
          msg.ids.end())
        continue;
      candidates.push_back(dataId);
    }
    const std::size_t take =
        std::min<std::size_t>(params_.pullBudget, candidates.size());
    for (std::size_t i = 0; i < take; ++i) {
      const std::size_t j =
          i + rng_.below(candidates.size() - i);
      std::swap(candidates[i], candidates[j]);
      enqueueData(msg.from, self, candidates[i], /*hop=*/0, /*viaPull=*/true,
                  /*recovery=*/false);
    }
    return;
  }
  std::uint32_t sent = 0;
  // Legacy digest: newest first — fresh messages are the likeliest gaps
  // worth filling when few ids are in flight.
  for (auto it = have.rbegin();
       it != have.rend() && sent < params_.pullBudget; ++it) {
    const std::uint64_t dataId = *it;
    if (std::find(msg.ids.begin(), msg.ids.end(), dataId) != msg.ids.end())
      continue;
    enqueueData(msg.from, self, dataId, /*hop=*/0, /*viaPull=*/true,
                /*recovery=*/false);
    ++sent;
  }
}

const LiveMessageStats& LiveCast::stats(std::uint64_t dataId) const {
  const auto it = stats_.find(dataId);
  VS07_EXPECT(it != stats_.end());
  return it->second;
}

const CompletedSummary* LiveCast::summary(std::uint64_t dataId) const {
  const auto it = summaryById_.find(dataId);
  return it == summaryById_.end() ? nullptr : &it->second;
}

SteadyStateStats LiveCast::steadyStats() const {
  SteadyStateStats out = steady_;
  out.trackedNow = stats_.size();
  out.trackedBitmapBytes = liveBitmapBytes();
  return out;
}

bool LiveCast::hasDelivered(std::uint64_t dataId, NodeId node) const {
  const auto it = deliveredTo_.find(dataId);
  if (it == deliveredTo_.end()) return false;
  return node < it->second.size() && it->second[node] != 0;
}

double LiveCast::missRatioPercentNow(std::uint64_t dataId) const {
  const auto it = deliveredTo_.find(dataId);
  VS07_EXPECT(it != deliveredTo_.end());
  const auto& bitmap = it->second;
  std::uint64_t deliveredAlive = 0;
  std::uint64_t alive = 0;
  for (const NodeId id : network_.aliveIds()) {
    ++alive;
    deliveredAlive += id < bitmap.size() && bitmap[id] ? 1 : 0;
  }
  if (alive == 0) return 0.0;
  return 100.0 * static_cast<double>(alive - deliveredAlive) /
         static_cast<double>(alive);
}

}  // namespace vs07::cast
