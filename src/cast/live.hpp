// Live push + pull dissemination — the paper's §8 future work:
//
//   "We have explicitly not considered pull-based dissemination. We
//    expect it to significantly improve the efficiency of the protocol in
//    terms of reliability. However, additional issues have to be taken
//    into account, such as the pull frequency, the duration for which
//    nodes maintain old messages, the size of buffers on nodes, ..."
//
// LiveCast runs dissemination through the transport against the *current*
// protocol views (not a frozen snapshot): publish() pushes a message with
// RINGCAST/RANDCAST forwarding, and each gossip cycle nodes optionally
// send an anti-entropy PullRequest — a digest of recently seen message
// ids — to a random peer, which pushes back whatever the requester is
// missing. Pull converts push misses (dead forwarding paths, §7.2/§7.3)
// into short delivery delays, bounded by the very §8 knobs this module
// exposes: pull frequency, buffer capacity, and digest length.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "common/expect.hpp"
#include "common/rng.hpp"
#include "gossip/cyclon.hpp"
#include "gossip/multiring.hpp"
#include "gossip/vicinity.hpp"
#include "net/transport.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "sim/router.hpp"

namespace vs07::cast {

/// Bounded per-node buffer of messages seen, in arrival order. Eviction
/// is FIFO: once capacity is exceeded the oldest message is forgotten and
/// can no longer be served to pulling peers (§8's "duration for which
/// nodes maintain old messages").
///
/// Caveat: forgetting implies re-forwarding on re-reception (pinned by
/// message_store_test). Under *asynchronous* delivery this rule turns
/// supercritical when capacity is small relative to the ids in flight —
/// each delivery of an evicted id spawns a fresh fanout-wide wave —
/// so latency-model experiments should size buffers above the number of
/// concurrently circulating messages.
class MessageStore {
 public:
  explicit MessageStore(std::uint32_t capacity = 64);

  bool hasSeen(std::uint64_t dataId) const;

  /// Records a message; evicts the oldest beyond capacity. No-op if seen.
  void remember(std::uint64_t dataId);

  /// The most recent ids, newest last, at most `limit`.
  std::vector<std::uint64_t> digest(std::size_t limit) const;

  /// Allocation-free variant: fills `out` (cleared first, capacity
  /// reused) with the same ids.
  void digestInto(std::size_t limit, std::vector<std::uint64_t>& out) const;

  /// Ids currently buffered (oldest first).
  const std::deque<std::uint64_t>& buffered() const noexcept {
    return buffer_;
  }

  void clear();

 private:
  std::uint32_t capacity_;
  std::deque<std::uint64_t> buffer_;
  std::unordered_map<std::uint64_t, std::uint8_t> seen_;
};

/// Delivery bookkeeping for one published message.
struct LiveMessageStats {
  std::uint64_t dataId = 0;
  NodeId origin = kNoNode;
  /// Nodes holding the message right after the synchronous push wave.
  std::uint64_t pushDelivered = 0;
  /// Nodes that got it later through pull.
  std::uint64_t pullDelivered = 0;
  std::uint64_t redundantDeliveries = 0;
  /// Data messages sent for this id (push forwards + pull answers).
  std::uint64_t messagesSent = 0;
  /// Of messagesSent: messages addressed to a node dead at send time.
  std::uint64_t messagesToDead = 0;
  /// Nodes first notified per push hop (index 0 = the origin); pull
  /// deliveries are not hop-tagged and excluded.
  std::vector<std::uint64_t> newlyNotifiedPerHop;
  /// Highest push hop that notified a node.
  std::uint32_t lastHop = 0;
  /// Engine ticks of the first (origin) and latest first-time delivery —
  /// the wave's extent in simulated time. Only meaningful when a clock is
  /// attached (LiveSession always attaches the engine); under an
  /// immediate transport both stamps equal the publish tick.
  std::uint64_t publishedAtTick = 0;
  std::uint64_t lastDeliveryTick = 0;

  /// Wave duration in ticks (0 for synchronous waves).
  std::uint64_t spreadTicks() const noexcept {
    return lastDeliveryTick >= publishedAtTick
               ? lastDeliveryTick - publishedAtTick
               : 0;
  }

  std::uint64_t delivered() const noexcept {
    return pushDelivered + pullDelivered;
  }
};

/// Live dissemination service. Register with Engine::addProtocol to give
/// the pull phase a heartbeat.
class LiveCast final : public sim::CycleProtocol,
                       public sim::MembershipObserver {
 public:
  struct Params {
    /// Push fanout F.
    std::uint32_t fanout = 3;
    /// Flood instead of fanout-limited forwarding: every forward goes to
    /// *all* current links (d-links first, then every r-link), ignoring
    /// `fanout`. The live twin of Strategy::kFlood.
    bool flood = false;
    /// A node issues one PullRequest every `pullInterval` of its own
    /// steps; 0 disables pulling (pure push, the paper's main setting).
    std::uint32_t pullInterval = 1;
    /// Ids per pull digest.
    std::uint32_t digestLength = 16;
    /// Per-node message buffer capacity.
    std::uint32_t bufferCapacity = 64;
    /// Max messages pushed back per pull answer.
    std::uint32_t pullBudget = 8;
  };

  /// `vicinity` may be null: then forwarding is pure RANDCAST; otherwise
  /// the hybrid Fig. 5 rule over the current ring neighbours is used
  /// (see useMultiRing for the §8 multi-ring d-link union).
  LiveCast(sim::Network& network, net::Transport& transport,
           sim::MessageRouter& router, const gossip::Cyclon& cyclon,
           const gossip::Vicinity* vicinity, Params params,
           std::uint64_t seed);

  LiveCast(const LiveCast&) = delete;
  LiveCast& operator=(const LiveCast&) = delete;

  /// Publishes a new message from `origin` (must be alive). The push wave
  /// completes synchronously (immediate transport) or as the transport
  /// delivers. Returns the new message id.
  std::uint64_t publish(NodeId origin);

  // sim::CycleProtocol — the pull heartbeat.
  void step(NodeId self) override;

  // sim::MembershipObserver — joiners start with empty buffers.
  void onSpawn(NodeId node) override;
  void onKill(NodeId node) override;

  /// Stats of a published message.
  const LiveMessageStats& stats(std::uint64_t dataId) const;

  /// A node's message buffer (inspection/tests).
  const MessageStore& store(NodeId node) const {
    VS07_EXPECT(node < stores_.size());
    return stores_[node];
  }

  /// Switches d-link selection to the union of `rings`' current
  /// neighbours (§8 multi-ring forwarding). Call before publishing.
  void useMultiRing(const gossip::MultiRing& rings) { multiRing_ = &rings; }

  /// Attaches a clock: deliveries are stamped with the tick they landed
  /// on (LiveMessageStats::lastDeliveryTick), making wave durations
  /// measurable. LiveSession attaches the engine (simulated ticks); the
  /// real-socket runtime attaches its wall clock (milliseconds).
  void attachClock(const TickClock& clock) { clock_ = &clock; }

  /// Invoked on every local first-sight delivery: (node, dataId, hop,
  /// viaPull). Fires for the origin (hop 0) and for every node receiving
  /// a Data message it has not buffered — including a re-reception after
  /// buffer eviction, so consumers needing exactly-once must dedup by
  /// dataId. The runtime's NodeProcess uses this to record per-node
  /// first-delivery hops, which only exist origin-side in stats().
  using DeliveryHook =
      std::function<void(NodeId, std::uint64_t, std::uint32_t, bool)>;
  void setDeliveryHook(DeliveryHook hook) { deliveryHook_ = std::move(hook); }

  /// Overrides the next published dataId. Multi-process runs give each
  /// process a disjoint base (e.g. (selfId+1) << 32) so concurrently
  /// published messages can never collide on id.
  void setNextDataId(std::uint64_t next) { nextDataId_ = next; }

  /// Has `node` received message `dataId`?
  bool hasDelivered(std::uint64_t dataId, NodeId node) const;

  /// Miss ratio (percent) of `dataId` over the *currently alive* nodes.
  double missRatioPercentNow(std::uint64_t dataId) const;

  /// Total PullRequests sent (pull overhead numerator).
  std::uint64_t pullRequestsSent() const noexcept { return pullsSent_; }
  /// Total Data messages sent in answer to pulls.
  std::uint64_t pullAnswersSent() const noexcept { return pullAnswers_; }
  /// Total Data messages sent by push forwarding.
  std::uint64_t pushMessagesSent() const noexcept { return pushSent_; }
  /// Total redundant Data deliveries (duplicates to alive nodes).
  std::uint64_t redundantDeliveries() const noexcept { return redundant_; }

  /// Cumulative per-node load counters over every message so far, sized
  /// Network::totalCreated(). Sessions diff them around a publish to
  /// report load; under interleaved messages the attribution is
  /// approximate by construction.
  const std::vector<std::uint32_t>& forwardsPerNode() const noexcept {
    return forwardsPerNode_;
  }
  const std::vector<std::uint32_t>& receivedPerNode() const noexcept {
    return receivedPerNode_;
  }

  const Params& params() const noexcept { return params_; }

 private:
  void registerHandlers(sim::MessageRouter& router);
  void handleData(NodeId self, const net::Message& msg);
  void handlePullRequest(NodeId self, const net::Message& msg);
  void deliverLocally(NodeId self, std::uint64_t dataId, bool viaPull,
                      std::uint32_t hop);
  void forward(NodeId self, NodeId receivedFrom, std::uint64_t dataId,
               std::uint32_t hop);
  void enqueueData(NodeId to, NodeId from, std::uint64_t dataId,
                   std::uint32_t hop, bool viaPull);
  /// Trampoline: drains queued sends iteratively so that long forwarding
  /// chains (e.g. ring-only propagation) cannot overflow the call stack.
  void drainOutbox();

  sim::Network& network_;
  net::Transport& transport_;
  const gossip::Cyclon& cyclon_;
  const gossip::Vicinity* vicinity_;
  const gossip::MultiRing* multiRing_ = nullptr;
  const TickClock* clock_ = nullptr;
  DeliveryHook deliveryHook_;
  Params params_;
  Rng rng_;

  std::vector<MessageStore> stores_;
  std::vector<std::uint64_t> stepCount_;
  std::vector<std::uint32_t> forwardsPerNode_;
  std::vector<std::uint32_t> receivedPerNode_;
  /// Per message: bitmap of nodes that have it (index = dataId order).
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> deliveredTo_;
  std::unordered_map<std::uint64_t, LiveMessageStats> stats_;
  std::uint64_t nextDataId_ = 1;
  /// One queued send; whether it answers a pull travels in the message
  /// itself (kFlagPullAnswer).
  struct Outgoing {
    NodeId to;
    net::Message msg;
  };
  /// FIFO outbox as a vector plus cursor (capacity is retained across
  /// drains; Data payloads own no heap buffers, so queueing is
  /// allocation-free in steady state).
  std::vector<Outgoing> outbox_;
  std::size_t outboxHead_ = 0;
  bool draining_ = false;
  /// forward() scratch. The link buffers are filled and consumed before
  /// any message is enqueued, so one set per instance suffices; the
  /// target list must survive the enqueue loop, which can re-enter
  /// forward() through a synchronous transport, so targets come from a
  /// per-nesting-depth pool (deque: growth keeps references stable).
  std::vector<NodeId> rlinkScratch_;
  std::vector<NodeId> dlinkScratch_;
  std::deque<std::vector<NodeId>> targetScratch_;
  std::size_t forwardDepth_ = 0;
  /// Pull-request scratch message (digest ids buffer recycled per pull).
  net::Message pullScratch_;
  std::uint64_t pullsSent_ = 0;
  std::uint64_t pullAnswers_ = 0;
  std::uint64_t pushSent_ = 0;
  std::uint64_t redundant_ = 0;
};

}  // namespace vs07::cast
