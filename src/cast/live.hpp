// Live push + pull dissemination — the paper's §8 future work:
//
//   "We have explicitly not considered pull-based dissemination. We
//    expect it to significantly improve the efficiency of the protocol in
//    terms of reliability. However, additional issues have to be taken
//    into account, such as the pull frequency, the duration for which
//    nodes maintain old messages, the size of buffers on nodes, ..."
//
// LiveCast runs dissemination through the transport against the *current*
// protocol views (not a frozen snapshot): publish() pushes a message with
// RINGCAST/RANDCAST forwarding, and each gossip cycle nodes optionally
// send an anti-entropy PullRequest — a digest of recently seen message
// ids — to a random peer, which pushes back whatever the requester is
// missing. Pull converts push misses (dead forwarding paths, §7.2/§7.3)
// into short delivery delays, bounded by the very §8 knobs this module
// exposes: pull frequency, buffer capacity, and digest length.
//
// Sustained traffic: bookkeeping is bounded in the number of messages
// ever published. At most Params::maxTrackedMessages ids carry full
// per-message state (stats + an O(N) delivery bitmap); beyond that the
// oldest tracked message retires into a compact CompletedSummary, and
// aggregate rates live in SteadyStateStats — so a publish *rate* holds a
// memory frontier of O(cap * N) instead of O(messages * N). Pull digests
// are windowed (a rotating slice of the buffer with explicit id bounds)
// and answers pick random-useful ids within the window, the selection
// policy of Sanghavi et al., "Gossiping with Multiple Messages".
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "common/expect.hpp"
#include "common/rng.hpp"
#include "gossip/cyclon.hpp"
#include "gossip/multiring.hpp"
#include "gossip/vicinity.hpp"
#include "net/transport.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "sim/router.hpp"

namespace vs07::cast {

/// Bounded per-node buffer of messages seen, in arrival order. Eviction
/// is FIFO: once capacity is exceeded the oldest message is forgotten and
/// can no longer be served to pulling peers (§8's "duration for which
/// nodes maintain old messages").
///
/// Caveat: forgetting implies re-forwarding on re-reception (pinned by
/// message_store_test). Under *asynchronous* delivery this rule turns
/// supercritical when capacity is small relative to the ids in flight —
/// each delivery of an evicted id spawns a fresh fanout-wide wave —
/// so latency-model experiments should size buffers above the number of
/// concurrently circulating messages.
class MessageStore {
 public:
  explicit MessageStore(std::uint32_t capacity = 64);

  bool hasSeen(std::uint64_t dataId) const;

  /// Records a message; evicts the oldest beyond capacity. No-op if seen.
  void remember(std::uint64_t dataId);

  /// The most recent ids, newest last, at most `limit`.
  std::vector<std::uint64_t> digest(std::size_t limit) const;

  /// Allocation-free variant: fills `out` (cleared first, capacity
  /// reused) with the same ids.
  void digestInto(std::size_t limit, std::vector<std::uint64_t>& out) const;

  /// Windowed digest slice: fills `out` (cleared first) with at most
  /// `limit` buffered ids starting at buffer position `start` (0 =
  /// oldest), without wrapping. Returns the number of ids copied.
  /// Successive calls with an advancing `start` rotate a fixed-size
  /// window over the whole buffer — how a pull digest covers thousands
  /// of in-flight ids a few at a time.
  std::size_t windowInto(std::size_t start, std::size_t limit,
                         std::vector<std::uint64_t>& out) const;

  /// Ids currently buffered (oldest first).
  const std::deque<std::uint64_t>& buffered() const noexcept {
    return buffer_;
  }

  std::size_t size() const noexcept { return buffer_.size(); }

  /// Has capacity ever forced an id out? While false, this node's
  /// buffer is its complete reception history — a pull digest may then
  /// open its window down to id 0, because "not buffered" provably
  /// means "never received" (a fresh joiner must be able to recover
  /// ids older than everything it holds).
  bool hasEvicted() const noexcept { return evicted_; }

  /// Highest id ever evicted (0 while hasEvicted() is false): this
  /// node's recovery horizon. Eviction is FIFO by *arrival*, which is
  /// jumbled across nodes under delivery latency, so an evicted id can
  /// still sit inside the [lo, +inf) window a pull digest advertises.
  /// Without a receiver-side check, a peer re-serves it, the re-delivery
  /// re-buffers it and evicts *another* id early — positive feedback
  /// that winds steady-state traffic up into the supercritical regime.
  /// Pull-layer deliveries at or below this id are therefore dropped by
  /// LiveCast::handleData.
  std::uint64_t recoveryHorizon() const noexcept { return maxEvicted_; }

  void clear();

 private:
  std::uint32_t capacity_;
  bool evicted_ = false;
  std::uint64_t maxEvicted_ = 0;
  std::deque<std::uint64_t> buffer_;
  std::unordered_map<std::uint64_t, std::uint8_t> seen_;
};

/// Delivery bookkeeping for one *tracked* published message.
struct LiveMessageStats {
  /// completedAtTick value while the message has not yet covered the
  /// alive population.
  static constexpr std::uint64_t kNeverCompleted = ~std::uint64_t{0};

  std::uint64_t dataId = 0;
  NodeId origin = kNoNode;
  /// Nodes first notified by the origin's push wave.
  std::uint64_t pushDelivered = 0;
  /// Nodes that got it later through pull recovery (the pull answer
  /// itself, or a push forward triggered by one — see kFlagRecoveryWave).
  std::uint64_t pullDelivered = 0;
  std::uint64_t redundantDeliveries = 0;
  /// Data messages sent for this id (push forwards + pull answers).
  std::uint64_t messagesSent = 0;
  /// Of messagesSent: messages addressed to a node dead at send time.
  std::uint64_t messagesToDead = 0;
  /// Nodes first notified per push hop (index 0 = the origin). Pull
  /// deliveries and recovery re-waves are excluded: this histogram
  /// describes only the origin's push wave.
  std::vector<std::uint64_t> newlyNotifiedPerHop;
  /// Highest origin-wave push hop that notified a node.
  std::uint32_t lastHop = 0;
  /// Engine ticks of the first (origin) and latest first-time delivery —
  /// the wave's extent in simulated time. Only meaningful when a clock is
  /// attached (LiveSession always attaches the engine); under an
  /// immediate transport both stamps equal the publish tick.
  std::uint64_t publishedAtTick = 0;
  std::uint64_t lastDeliveryTick = 0;
  /// Tick at which delivered() first reached the alive population size
  /// (kNeverCompleted until then). Approximate under churn: delivered
  /// counts nodes that may have died since, so completion can fire while
  /// a late joiner is still missing — the pull layer covers the gap.
  std::uint64_t completedAtTick = kNeverCompleted;

  /// Wave duration in ticks (0 for synchronous waves).
  std::uint64_t spreadTicks() const noexcept {
    return lastDeliveryTick >= publishedAtTick
               ? lastDeliveryTick - publishedAtTick
               : 0;
  }

  std::uint64_t delivered() const noexcept {
    return pushDelivered + pullDelivered;
  }

  bool completed() const noexcept {
    return completedAtTick != kNeverCompleted;
  }
};

/// What remains of a tracked message once it retires: the per-node
/// delivery bitmap is dropped (recycled), the counters and the hop
/// histogram survive. Bounded ring of Params::retainedSummaries.
struct CompletedSummary {
  std::uint64_t dataId = 0;
  NodeId origin = kNoNode;
  std::uint64_t delivered = 0;
  std::uint64_t pushDelivered = 0;
  std::uint64_t pullDelivered = 0;
  std::uint64_t redundantDeliveries = 0;
  std::uint64_t messagesSent = 0;
  std::vector<std::uint64_t> newlyNotifiedPerHop;
  std::uint32_t lastHop = 0;
  std::uint64_t publishedAtTick = 0;
  std::uint64_t spreadTicks = 0;
  /// True if the message covered the alive population before retiring;
  /// false means it aged out of the tracking window still incomplete.
  bool completed = false;
};

/// Aggregate accounting that stays O(1) in the number of messages ever
/// published — the steady-state view of a sustained publish rate.
struct SteadyStateStats {
  std::uint64_t published = 0;
  /// Retired having covered the alive population.
  std::uint64_t retiredCompleted = 0;
  /// Retired by cap pressure while still missing nodes.
  std::uint64_t retiredAgedOut = 0;
  /// First-time deliveries / redundant receptions across tracked ids.
  std::uint64_t firstDeliveries = 0;
  std::uint64_t pushDeliveries = 0;
  std::uint64_t pullDeliveries = 0;
  std::uint64_t redundantDeliveries = 0;
  /// Spread-tick aggregate over retired messages (floor for averages).
  std::uint64_t spreadTicksTotalRetired = 0;
  std::uint64_t maxSpreadTicksRetired = 0;
  /// The live memory frontier: tracked ids now / at peak, and the bytes
  /// their delivery bitmaps hold. Bounded by maxTrackedMessages * N.
  std::uint64_t trackedNow = 0;
  std::uint64_t peakTracked = 0;
  std::uint64_t trackedBitmapBytes = 0;
  std::uint64_t peakTrackedBitmapBytes = 0;

  std::uint64_t retired() const noexcept {
    return retiredCompleted + retiredAgedOut;
  }

  /// Redundant receptions per first-time delivery (0 when nothing
  /// delivered yet) — the overhead of push fanout + pull re-sends.
  double redundancyRatio() const noexcept {
    return firstDeliveries == 0
               ? 0.0
               : static_cast<double>(redundantDeliveries) /
                     static_cast<double>(firstDeliveries);
  }

  /// Folds another instance's accounting into this one: counters add,
  /// peaks take the max, and the live-frontier gauges (trackedNow,
  /// trackedBitmapBytes) add because concurrent instances hold their
  /// memory simultaneously. Exact on integers, hence associative and
  /// commutative — but reduce per-shard copies in canonical (shard
  /// index) order anyway, matching the engine-wide merge discipline.
  void merge(const SteadyStateStats& other) noexcept {
    published += other.published;
    retiredCompleted += other.retiredCompleted;
    retiredAgedOut += other.retiredAgedOut;
    firstDeliveries += other.firstDeliveries;
    pushDeliveries += other.pushDeliveries;
    pullDeliveries += other.pullDeliveries;
    redundantDeliveries += other.redundantDeliveries;
    spreadTicksTotalRetired += other.spreadTicksTotalRetired;
    maxSpreadTicksRetired =
        std::max(maxSpreadTicksRetired, other.maxSpreadTicksRetired);
    trackedNow += other.trackedNow;
    peakTracked = std::max(peakTracked, other.peakTracked);
    trackedBitmapBytes += other.trackedBitmapBytes;
    peakTrackedBitmapBytes =
        std::max(peakTrackedBitmapBytes, other.peakTrackedBitmapBytes);
  }
};

/// Live dissemination service. Register with Engine::addProtocol to give
/// the pull phase a heartbeat.
class LiveCast final : public sim::CycleProtocol,
                       public sim::MembershipObserver {
 public:
  struct Params {
    /// Push fanout F.
    std::uint32_t fanout = 3;
    /// Flood instead of fanout-limited forwarding: every forward goes to
    /// *all* current links (d-links first, then every r-link), ignoring
    /// `fanout`. The live twin of Strategy::kFlood.
    bool flood = false;
    /// A node issues one PullRequest every `pullInterval` of its own
    /// steps; 0 disables pulling (pure push, the paper's main setting).
    std::uint32_t pullInterval = 1;
    /// Ids per pull digest.
    std::uint32_t digestLength = 16;
    /// Per-node message buffer capacity.
    std::uint32_t bufferCapacity = 64;
    /// Max messages pushed back per pull answer — one budget shared
    /// across all ids a digest exposes as missing.
    std::uint32_t pullBudget = 8;
    /// Hard cap on concurrently tracked messages (full LiveMessageStats
    /// + O(N) delivery bitmap). At the cap, publishing retires the
    /// oldest tracked id — preferring one that already completed — into
    /// a CompletedSummary. This is the sustained-traffic memory bound.
    std::uint32_t maxTrackedMessages = 1024;
    /// When > 0 (and a clock is attached), a completed message is
    /// retired eagerly once it has lingered this many ticks past
    /// completion, keeping the tracked set near the true in-flight
    /// frontier instead of cap-sized. 0 keeps completed messages
    /// tracked until cap pressure — the single-wave experiments rely on
    /// querying stats() after the wave is done.
    std::uint64_t completedLingerTicks = 0;
    /// Retired CompletedSummary records kept for inspection (FIFO).
    std::uint32_t retainedSummaries = 1024;
    /// Windowed pull digests: each PullRequest advertises a rotating
    /// window of the requester's buffer (explicit [lo, hi] id bounds +
    /// the ids held within), and the answerer picks uniformly at random
    /// among useful ids in the window (Sanghavi et al.). false = legacy
    /// newest-`digestLength` digest answered newest-first, which starves
    /// old gaps once in-flight ids exceed the digest length.
    bool windowedPull = true;
  };

  /// `vicinity` may be null: then forwarding is pure RANDCAST; otherwise
  /// the hybrid Fig. 5 rule over the current ring neighbours is used
  /// (see useMultiRing for the §8 multi-ring d-link union).
  LiveCast(sim::Network& network, net::Transport& transport,
           sim::MessageRouter& router, const gossip::Cyclon& cyclon,
           const gossip::Vicinity* vicinity, Params params,
           std::uint64_t seed);

  LiveCast(const LiveCast&) = delete;
  LiveCast& operator=(const LiveCast&) = delete;

  /// Publishes a new message from `origin` (must be alive). The push wave
  /// completes synchronously (immediate transport) or as the transport
  /// delivers. Returns the new message id. May retire older tracked
  /// messages first (see Params::maxTrackedMessages).
  std::uint64_t publish(NodeId origin);

  // sim::CycleProtocol — the pull heartbeat.
  void step(NodeId self) override;

  // sim::MembershipObserver — joiners start with empty buffers.
  void onReserve(NodeId count) override;
  void onSpawn(NodeId node) override;
  void onKill(NodeId node) override;

  /// Stats of a *tracked* published message; retired ids reject (their
  /// remains live in summary(), if retained).
  const LiveMessageStats& stats(std::uint64_t dataId) const;

  /// Is full per-message state still held for this id?
  bool isTracked(std::uint64_t dataId) const {
    return stats_.contains(dataId);
  }

  /// The retired remains of a message, or nullptr if never published,
  /// still tracked, or already evicted from the summary ring.
  const CompletedSummary* summary(std::uint64_t dataId) const;

  /// Aggregate rates + the live memory frontier. O(tracked) per call.
  SteadyStateStats steadyStats() const;

  /// A node's message buffer (inspection/tests).
  const MessageStore& store(NodeId node) const {
    VS07_EXPECT(node < stores_.size());
    return stores_[node];
  }

  /// Switches d-link selection to the union of `rings`' current
  /// neighbours (§8 multi-ring forwarding). Call before publishing.
  void useMultiRing(const gossip::MultiRing& rings) { multiRing_ = &rings; }

  /// Attaches a clock: deliveries are stamped with the tick they landed
  /// on (LiveMessageStats::lastDeliveryTick), making wave durations
  /// measurable. LiveSession attaches the engine (simulated ticks); the
  /// real-socket runtime attaches its wall clock (milliseconds).
  void attachClock(const TickClock& clock) { clock_ = &clock; }

  /// Invoked on every local first-sight delivery: (node, dataId, hop,
  /// viaPull). Fires for the origin (hop 0) and for every node receiving
  /// a Data message it has not buffered — including a re-reception after
  /// buffer eviction, so consumers needing exactly-once must dedup by
  /// dataId. The runtime's NodeProcess uses this to record per-node
  /// first-delivery hops, which only exist origin-side in stats().
  using DeliveryHook =
      std::function<void(NodeId, std::uint64_t, std::uint32_t, bool)>;
  void setDeliveryHook(DeliveryHook hook) { deliveryHook_ = std::move(hook); }

  /// Overrides the next published dataId. Multi-process runs give each
  /// process a disjoint base (e.g. (selfId+1) << 32) so concurrently
  /// published messages can never collide on id.
  void setNextDataId(std::uint64_t next) { nextDataId_ = next; }

  /// Has `node` received message `dataId`? Tracked ids answer from the
  /// delivery bitmap; retired ids answer false (per-node knowledge is
  /// dropped at retirement).
  bool hasDelivered(std::uint64_t dataId, NodeId node) const;

  /// Miss ratio (percent) of a *tracked* `dataId` over the currently
  /// alive nodes.
  double missRatioPercentNow(std::uint64_t dataId) const;

  /// Total PullRequests sent (pull overhead numerator).
  std::uint64_t pullRequestsSent() const noexcept { return pullsSent_; }
  /// Total Data messages sent in answer to pulls.
  std::uint64_t pullAnswersSent() const noexcept { return pullAnswers_; }
  /// Total Data messages sent by push forwarding.
  std::uint64_t pushMessagesSent() const noexcept { return pushSent_; }
  /// Of pushMessagesSent: forwards belonging to a pull-recovery re-wave
  /// rather than the origin's push wave (kFlagRecoveryWave).
  std::uint64_t recoveryForwardsSent() const noexcept {
    return recoveryForwards_;
  }
  /// Total redundant Data deliveries (duplicates to alive nodes).
  std::uint64_t redundantDeliveries() const noexcept { return redundant_; }
  /// Pull-layer deliveries dropped because the id sat at or below the
  /// receiver's recovery horizon (MessageStore::recoveryHorizon) — the
  /// guard that keeps repair traffic from resurrecting evicted ids.
  std::uint64_t recoveryDropsBeyondHorizon() const noexcept {
    return recoveryDropped_;
  }

  /// Cumulative per-node load counters over every message so far, sized
  /// Network::totalCreated(). Sessions diff them around a publish to
  /// report load; under interleaved messages the attribution is
  /// approximate by construction.
  const std::vector<std::uint32_t>& forwardsPerNode() const noexcept {
    return forwardsPerNode_;
  }
  const std::vector<std::uint32_t>& receivedPerNode() const noexcept {
    return receivedPerNode_;
  }

  const Params& params() const noexcept { return params_; }

 private:
  void registerHandlers(sim::MessageRouter& router);
  void handleData(NodeId self, const net::Message& msg);
  void handlePullRequest(NodeId self, const net::Message& msg);
  /// `recovery`: this delivery was caused by the pull layer (a pull
  /// answer, or a forward descending from one) — counted as
  /// pullDelivered and kept out of the origin-wave hop histogram.
  void deliverLocally(NodeId self, std::uint64_t dataId, bool viaPull,
                      std::uint32_t hop, bool recovery);
  void forward(NodeId self, NodeId receivedFrom, std::uint64_t dataId,
               std::uint32_t hop, bool recovery);
  void enqueueData(NodeId to, NodeId from, std::uint64_t dataId,
                   std::uint32_t hop, bool viaPull, bool recovery);
  /// Trampoline: drains queued sends iteratively so that long forwarding
  /// chains (e.g. ring-only propagation) cannot overflow the call stack.
  void drainOutbox();
  /// Linger sweep + cap enforcement; runs before each publish.
  void reclaimTracked();
  /// Moves one tracked id into the summary ring, recycling its bitmap.
  void retire(std::uint64_t dataId, bool completed);
  /// Bytes currently held by tracked delivery bitmaps.
  std::uint64_t liveBitmapBytes() const;

  sim::Network& network_;
  net::Transport& transport_;
  const gossip::Cyclon& cyclon_;
  const gossip::Vicinity* vicinity_;
  const gossip::MultiRing* multiRing_ = nullptr;
  const TickClock* clock_ = nullptr;
  DeliveryHook deliveryHook_;
  Params params_;
  Rng rng_;

  std::vector<MessageStore> stores_;
  std::vector<std::uint64_t> stepCount_;
  /// Per-node rotating window position for windowed pull digests.
  std::vector<std::size_t> pullWindowPos_;
  std::vector<std::uint32_t> forwardsPerNode_;
  std::vector<std::uint32_t> receivedPerNode_;
  /// Per *tracked* message: bitmap of nodes that have it. Bounded by
  /// maxTrackedMessages entries; retired bitmaps recycle via
  /// bitmapPool_, so steady-state publishing allocates nothing here.
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> deliveredTo_;
  std::unordered_map<std::uint64_t, LiveMessageStats> stats_;
  /// Tracked ids oldest-first (retirement order).
  std::deque<std::uint64_t> trackedOrder_;
  std::vector<std::vector<std::uint8_t>> bitmapPool_;
  /// Retired remains, FIFO-bounded by Params::retainedSummaries.
  std::unordered_map<std::uint64_t, CompletedSummary> summaryById_;
  std::deque<std::uint64_t> summaryOrder_;
  SteadyStateStats steady_;
  std::uint64_t nextDataId_ = 1;
  /// One queued send; whether it answers a pull travels in the message
  /// itself (kFlagPullAnswer).
  struct Outgoing {
    NodeId to;
    net::Message msg;
  };
  /// FIFO outbox as a vector plus cursor (capacity is retained across
  /// drains; Data payloads own no heap buffers, so queueing is
  /// allocation-free in steady state).
  std::vector<Outgoing> outbox_;
  std::size_t outboxHead_ = 0;
  bool draining_ = false;
  /// forward() scratch. The link buffers are filled and consumed before
  /// any message is enqueued, so one set per instance suffices; the
  /// target list must survive the enqueue loop, which can re-enter
  /// forward() through a synchronous transport, so targets come from a
  /// per-nesting-depth pool (deque: growth keeps references stable).
  std::vector<NodeId> rlinkScratch_;
  std::vector<NodeId> dlinkScratch_;
  std::deque<std::vector<NodeId>> targetScratch_;
  std::size_t forwardDepth_ = 0;
  /// Pull-request scratch message (digest ids buffer recycled per pull).
  net::Message pullScratch_;
  /// Windowed-digest scratch (requester side / answerer candidates).
  std::vector<std::uint64_t> windowScratch_;
  std::vector<std::uint64_t> pullCandidateScratch_;
  std::uint64_t pullsSent_ = 0;
  std::uint64_t pullAnswers_ = 0;
  std::uint64_t pushSent_ = 0;
  std::uint64_t recoveryForwards_ = 0;
  std::uint64_t redundant_ = 0;
  std::uint64_t recoveryDropped_ = 0;
};

}  // namespace vs07::cast
