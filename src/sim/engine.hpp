// Cycle-driven simulation engine, modelled after PeerSim's cycle mode,
// which is what the paper's evaluation runs on.
//
// Each cycle: every alive node, in fresh random order, takes one active
// step per registered protocol ("nodes have independent, non-synchronized
// timers" approximated by random ordering, the standard PeerSim approach);
// then each Control runs once (churn, observers, convergence probes).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "net/node_id.hpp"
#include "sim/network.hpp"

namespace vs07::sim {

/// A gossip protocol instance driven by the engine. One object manages the
/// state of *all* nodes (dense arrays), like a PeerSim protocol array.
class CycleProtocol {
 public:
  virtual ~CycleProtocol() = default;
  /// One active gossip step of `self` (initiate an exchange).
  virtual void step(NodeId self) = 0;
};

/// Hook run once per cycle after all protocol steps.
class Control {
 public:
  virtual ~Control() = default;
  virtual void execute(std::uint64_t cycle) = 0;
};

/// Receives join events with an introducer (bootstrap contact); the churn
/// control uses this to connect fresh nodes. Implemented by protocols.
class JoinHandler {
 public:
  virtual ~JoinHandler() = default;
  virtual void onJoin(NodeId node, NodeId introducer) = 0;
};

/// The engine. Non-owning over protocols/controls: caller keeps them alive.
class Engine {
 public:
  Engine(Network& network, std::uint64_t seed);

  /// Registers a protocol; steps run in registration order per node.
  void addProtocol(CycleProtocol& protocol);

  /// Registers a control; runs in registration order each cycle.
  void addControl(Control& control);

  /// Per-node step multiplier: a node for which this returns k takes k
  /// active steps in a cycle ("gossip at an arbitrarily higher rate", the
  /// §7.3 join-acceleration optimisation). Pass {} to clear; values of 0
  /// are treated as 1.
  using StepBoostFn = std::function<std::uint32_t(NodeId, std::uint64_t)>;
  void setStepBoost(StepBoostFn boost) { boost_ = std::move(boost); }

  /// Runs `cycles` full cycles.
  void run(std::uint64_t cycles);

  /// Runs until `predicate()` is true, checking after each cycle, or until
  /// `maxCycles` have elapsed. Returns cycles actually run.
  template <typename Pred>
  std::uint64_t runUntil(Pred predicate, std::uint64_t maxCycles) {
    std::uint64_t ran = 0;
    while (ran < maxCycles && !predicate()) {
      runOneCycle();
      ++ran;
    }
    return ran;
  }

  /// Current cycle number (count of completed cycles).
  std::uint64_t cycle() const noexcept { return cycle_; }

  Network& network() noexcept { return network_; }

 private:
  void runOneCycle();

  Network& network_;
  Rng rng_;
  std::vector<CycleProtocol*> protocols_;
  std::vector<Control*> controls_;
  StepBoostFn boost_;
  std::uint64_t cycle_ = 0;
  std::vector<NodeId> order_;  // scratch, reused every cycle
};

/// Boost function for Engine::setStepBoost implementing the §7.3
/// suggestion: nodes younger than `warmupCycles` gossip `factor` times
/// per cycle, completing their join warm-up correspondingly faster.
Engine::StepBoostFn joinerBoost(const Network& network, std::uint32_t factor,
                                std::uint32_t warmupCycles);

}  // namespace vs07::sim
