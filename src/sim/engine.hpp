// Discrete-event simulation engine with pluggable timing models.
//
// The core is a deterministic EventQueue keyed on (dueTick, priority,
// seq); everything that happens in simulated time — node gossip timers,
// message deliveries, per-cycle controls — is an event on that queue.
// Within a tick, deliveries run before timers run before controls.
//
// Two timing models drive the gossip timers (sim/timing.hpp):
//
//   * CycleSync (default): one global timer, modelled after PeerSim's
//     cycle mode, which is what the paper's evaluation runs on. Each
//     cycle every alive node, in fresh random order, takes one active
//     step per registered protocol; exchanges complete inside the cycle.
//     This reproduces the pre-event-core engine bit-for-bit.
//   * JitteredPeriodic: every node owns an independent periodic timer,
//     phase-shifted by a per-node random offset within the cycle's
//     ticksPerCycle-tick span ("nodes have independent, non-synchronized
//     timers", the §7 assumption the cycle model only approximates).
//
// A cycle remains the unit of experiment time in both models: run(n)
// runs n cycles, controls (churn, observers, probes) execute once at the
// end of each cycle, and cycle() counts completed cycles. Under
// JitteredPeriodic a cycle simply spans ticksPerCycle ticks instead of
// one instant.
//
// Message latency: transports may schedule deliveries onto the shared
// queue via scheduleDelivery() (see sim::LatencyTransport), so delayed
// traffic interleaves deterministically with node timers instead of
// living in per-transport side heaps.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/clock.hpp"
#include "common/event_queue.hpp"
#include "common/rng.hpp"
#include "net/delivery_sink.hpp"
#include "net/message_pool.hpp"
#include "net/node_id.hpp"
#include "sim/network.hpp"
#include "sim/timing.hpp"

namespace vs07::sim {

/// Event ordering classes within one tick (EventQueue priority field):
/// pending message deliveries land first, then node gossip timers, then
/// end-of-cycle controls.
inline constexpr std::uint8_t kPriorityDelivery = 0;
inline constexpr std::uint8_t kPriorityTimer = 1;
inline constexpr std::uint8_t kPriorityControl = 2;

/// A gossip protocol instance driven by the engine. One object manages the
/// state of *all* nodes (dense arrays), like a PeerSim protocol array.
class CycleProtocol {
 public:
  virtual ~CycleProtocol() = default;
  /// One active gossip step of `self` (initiate an exchange).
  virtual void step(NodeId self) = 0;
};

/// Hook run once per cycle after all protocol steps.
class Control {
 public:
  virtual ~Control() = default;
  virtual void execute(std::uint64_t cycle) = 0;
};

/// Receives join events with an introducer (bootstrap contact); the churn
/// control uses this to connect fresh nodes. Implemented by protocols.
class JoinHandler {
 public:
  virtual ~JoinHandler() = default;
  virtual void onJoin(NodeId node, NodeId introducer) = 0;
};

/// The engine. Non-owning over protocols/controls: caller keeps them
/// alive. Implements TickClock over the simulated tick, so tick-stamping
/// consumers (cast::LiveCast) work against either the engine or the
/// runtime's wall clock.
class Engine : public TickClock {
 public:
  /// CycleSync timing (the paper's model) unless `timing` says otherwise.
  Engine(Network& network, std::uint64_t seed,
         TimingConfig timing = TimingConfig::cycleSync());
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Registers a protocol; steps run in registration order per node.
  void addProtocol(CycleProtocol& protocol);

  /// Registers a control; runs in registration order each cycle.
  void addControl(Control& control);

  /// Per-node step multiplier: a node for which this returns k takes k
  /// active steps per timer firing ("gossip at an arbitrarily higher
  /// rate", the §7.3 join-acceleration optimisation). Pass {} to clear;
  /// values of 0 are treated as 1.
  using StepBoostFn = std::function<std::uint32_t(NodeId, std::uint64_t)>;
  void setStepBoost(StepBoostFn boost) { boost_ = std::move(boost); }

  /// Runs `cycles` full cycles.
  void run(std::uint64_t cycles);

  /// Runs until `predicate()` is true, checking after each cycle, or until
  /// `maxCycles` have elapsed. Returns cycles actually run.
  template <typename Pred>
  std::uint64_t runUntil(Pred predicate, std::uint64_t maxCycles) {
    std::uint64_t ran = 0;
    while (ran < maxCycles && !predicate()) {
      runOneCycle();
      ++ran;
    }
    return ran;
  }

  /// Current cycle number (count of completed cycles).
  std::uint64_t cycle() const noexcept { return cycle_; }

  /// Current simulated tick. Under CycleSync with ticksPerCycle 1 this
  /// advances one per cycle; under jittered timing it is the fine-grained
  /// clock node timers and deliveries are scheduled on.
  std::uint64_t tick() const noexcept { return tick_; }

  // TickClock — the simulated tick.
  std::uint64_t nowTick() const noexcept override { return tick_; }

  const TimingConfig& timing() const noexcept { return timing_; }

  /// Schedules `action` onto the shared event queue `delayTicks` from the
  /// current tick, at delivery priority. Deliveries due mid-cycle
  /// interleave with node timers in deterministic (dueTick, priority,
  /// seq) order. For message traffic prefer scheduleMessageDelivery,
  /// which recycles payload buffers through the engine's pool.
  void scheduleDelivery(std::uint64_t delayTicks, EventQueue::Action action);

  /// Schedules delivery of `msg` to `sink` `delayTicks` from the current
  /// tick, at delivery priority and in the same deterministic order as
  /// scheduleDelivery. The payload is checked into the engine's
  /// MessagePool (the caller's message is left holding recycled buffers)
  /// and the queued event captures only the slot index, so a
  /// steady-state cycle's in-flight traffic allocates nothing.
  /// `sink` must outlive the delivery.
  void scheduleMessageDelivery(std::uint64_t delayTicks, NodeId to,
                               net::Message&& msg, net::DeliverySink& sink);

  /// Deliveries scheduled but not yet executed.
  std::size_t pendingDeliveries() const noexcept { return pendingDeliveries_; }

  /// The in-flight payload pool (diagnostics: capacity stops growing once
  /// traffic reaches steady state; inUse() returns to zero when the
  /// queue drains).
  const net::MessagePool& deliveryPool() const noexcept { return pool_; }

  Network& network() noexcept { return network_; }

 private:
  /// Assigns gossip-timer phases on membership changes (joiners get a
  /// fresh phase the moment they spawn, so churn works in any mode).
  struct PhaseTracker final : MembershipObserver {
    explicit PhaseTracker(Engine& engine) : engine(engine) {}
    void onReserve(NodeId count) override { engine.phase_.reserve(count); }
    void onSpawn(NodeId node) override { engine.assignPhase(node); }
    void onKill(NodeId /*node*/) override {}
    Engine& engine;
  };

  void runOneCycle();
  /// Executes one pooled message delivery (see scheduleMessageDelivery).
  void deliverSlot(std::uint32_t slot);
  /// CycleSync: the whole synchronous round as one macro-event.
  void sweepCycleSync();
  /// JitteredPeriodic: one node's timer firing.
  void stepNode(NodeId node);
  /// End-of-cycle event: advances cycle() and runs the controls.
  void finishCycle();
  void assignPhase(NodeId node);

  Network& network_;
  TimingConfig timing_;
  Rng rng_;
  /// Separate stream for timer phases so CycleSync runs consume rng_
  /// exactly as the pre-event-core engine did (bit-for-bit regression).
  Rng phaseRng_;
  EventQueue queue_;
  PhaseTracker phases_{*this};
  std::vector<CycleProtocol*> protocols_;
  std::vector<Control*> controls_;
  StepBoostFn boost_;
  std::uint64_t cycle_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t nextCycleStart_ = 0;
  std::size_t pendingDeliveries_ = 0;
  /// Pooled payloads (and destinations) of in-flight message
  /// deliveries, with the per-slot sink in a parallel array.
  net::MessagePool pool_;
  std::vector<net::DeliverySink*> slotSink_;
  std::vector<NodeId> order_;          // scratch, reused every cycle
  std::vector<std::uint32_t> phase_;   // per-node timer offset in ticks
  /// Jittered-mode scratch: nodes grouped by phase, one bucket per tick
  /// of the cycle, refilled at each cycle start and consumed by that
  /// cycle's timer events before the next refill.
  std::vector<std::vector<NodeId>> buckets_;
};

/// Boost function for Engine::setStepBoost implementing the §7.3
/// suggestion: nodes younger than `warmupCycles` gossip `factor` times
/// per cycle, completing their join warm-up correspondingly faster.
Engine::StepBoostFn joinerBoost(const Network& network, std::uint32_t factor,
                                std::uint32_t warmupCycles);

}  // namespace vs07::sim
