// ShardedEngine — intra-run parallelism for the cycle-driven simulation:
// one scenario on all cores, bit-identical for any worker count.
//
// The population is partitioned into P shards (shard = node id mod P, one
// worker per shard, P = --engine-threads). A cycle executes as a sequence
// of parallel phases separated by barriers (common/task_pool):
//
//   step phase     every shard runs the active gossip step of its own
//                  nodes; all sends are buffered, nothing is delivered.
//   deliver round  every shard takes the messages addressed to its own
//                  nodes, sorts them into canonical (destination, sender,
//                  send-seq) order, and runs the protocol handlers;
//                  replies are buffered for the next round.
//   ...            rounds repeat until no messages are in flight (two
//                  rounds for CYCLON/VICINITY: request, reply).
//   controls       sequential, at the cycle boundary — churn, probes and
//                  Network membership mutations happen only here, so the
//                  parallel phases see an immutable population.
//
// Determinism: cross-node effects travel only through buffered messages;
// within a phase every callback touches only the acting node's state (see
// sim/sharded.hpp for the contract). Delivery order per destination node
// is fixed by the canonical sort, send order per sender is fixed by the
// sender's own execution, and every random draw comes from a per-node
// stream derived with deriveStreamSeed(seed, node, eventIndex). None of
// these depend on the shard layout or thread scheduling, so runs with 1,
// 2, or 8 workers produce bit-identical views, records and reports. (The
// semantics intentionally differ from the sequential Engine's CycleSync
// sweep, whose in-cycle exchange interleaving is order-dependent; the
// sharded mode is its own reference, pinned by the determinism suites.)
//
// Memory: a naive barrier would buffer one full round of requests for
// the whole population at once (~GBs at 10M nodes), so each cycle's step
// phase is split into kStepBatches sub-batches — batch membership is a
// pure function of the node id, keeping the schedule partition-
// independent while bounding in-flight traffic to population/kStepBatches
// exchanges. All buffers (outboxes, inbox indexes, worklists, payload
// slots) are recycled, so a steady-state cycle allocates nothing.
//
// Windowed execution (JitteredPeriodic, with or without latency): the
// lockstep schedule above assumes all timers coincide. Under jittered
// timing the engine instead runs conservative windowed PDES over
// per-shard event state — each shard keeps the in-flight messages due at
// its own nodes in a ShardDeliveryQueue, and node timers fire at
// per-node phase offsets within the cycle's ticksPerCycle-tick span. At
// each barrier the coordinator computes the global safe horizon
//
//   horizon = min(next event time across shards) + lookahead,
//
// where the next event time is the earlier of the next occupied timer
// tick and the earliest stored delivery, and the lookahead is the
// minimum cross-shard message latency (LatencyModel::minLatencyTicks()).
// Every tick below the horizon executes without further coordination:
// any message sent at tick t inside the window arrives no earlier than
// t + lookahead >= horizon, so nothing sent in-window can become due
// in-window. Cross-shard sends buffer into the same parity outboxes as
// the lockstep path and merge at the window barrier in canonical
// (to, from, sender-seq) order. Latency-free jittered timing has
// lookahead 0 (sends are immediate) and degrades to 1-tick windows with
// delivery sub-rounds until the tick quiesces — the same request/reply
// cascade as the lockstep deliver rounds, per tick instead of per batch.
// Timer phases are a pure function of the node id (a deriveStreamSeed
// hash), so the event schedule — like everything else — is independent
// of the shard layout and thread count. The jittered sharded schedule is
// its own reference, exactly like the CycleSync sharded schedule: the
// sequential Engine's shared instance RNGs (timer phases in spawn order,
// latency draws in global send order) cannot be reproduced shard-locally,
// so the determinism suites pin sharded-vs-sharded bit-identity across
// thread counts plus macroscopic agreement with the sequential engine.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/event_queue.hpp"
#include "common/rng.hpp"
#include "common/task_pool.hpp"
#include "net/message.hpp"
#include "net/message_pool.hpp"
#include "net/transport.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "sim/sharded.hpp"
#include "sim/timing.hpp"

namespace vs07::sim {

/// The parallel engine. Drives ShardedProtocols over `threads` workers;
/// Controls (churn, probes) run sequentially at cycle boundaries exactly
/// as under sim::Engine.
class ShardedEngine {
 public:
  /// Step phase sub-batches per cycle (bounds in-flight exchange buffers
  /// to population/kStepBatches per round — at 10M nodes the difference
  /// between hundreds of MiB and several GiB of resident outbox slots).
  /// Part of the deterministic schedule: results depend on this constant,
  /// never on the thread count.
  static constexpr std::uint32_t kStepBatches = 64;
  /// Nodes per batch stripe: ids [16k, 16k+16) share a batch, so every
  /// batch spreads over all shards for any worker count up to 16.
  static constexpr std::uint32_t kBatchStripe = 16;
  /// Cycles a bucket must sit below a quarter of its slot high-water
  /// before the excess is released (hysteresis: steady-state bursts must
  /// never trigger trim/regrow churn, only genuine one-offs like the
  /// bootstrap hub funnel do).
  static constexpr std::uint32_t kTrimAfterCycles = 8;

  /// CycleSync timing (lockstep barriered cycles) unless `timing` says
  /// otherwise; JitteredPeriodic (with or without a LatencyModel) runs
  /// the windowed schedule described in the file comment. CycleSync with
  /// a latency model is not supported sharded (the lockstep sweep has no
  /// tick axis to delay along) — use jitteredLatency for delayed traffic.
  ShardedEngine(Network& network, std::uint64_t seed, std::uint32_t threads,
                TimingConfig timing = TimingConfig::cycleSync());
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Registers a protocol; per node, protocols step in registration order.
  void addProtocol(ShardedProtocol& protocol);

  /// Registers a control; runs sequentially in order each cycle boundary.
  void addControl(Control& control);

  /// Runs `cycles` full cycles.
  void run(std::uint64_t cycles);

  /// Runs until `predicate()` is true, checking after each cycle, or until
  /// `maxCycles` have elapsed. Returns cycles actually run.
  template <typename Pred>
  std::uint64_t runUntil(Pred predicate, std::uint64_t maxCycles) {
    std::uint64_t ran = 0;
    while (ran < maxCycles && !predicate()) {
      runOneCycle();
      ++ran;
    }
    return ran;
  }

  /// Completed cycles.
  std::uint64_t cycle() const noexcept { return cycle_; }

  /// Current simulated tick. Advances only under jittered timing (the
  /// lockstep CycleSync schedule has no tick axis).
  std::uint64_t tick() const noexcept { return currentTick_; }

  const TimingConfig& timing() const noexcept { return timing_; }

  /// Worker/shard count (fixed at construction).
  std::uint32_t threadCount() const noexcept { return shardCount_; }

  /// Shard owning `node` under this engine's partition.
  std::uint32_t shardOf(NodeId node) const noexcept {
    return node % shardCount_;
  }
  /// Step sub-batch of `node` (partition-independent).
  static std::uint32_t batchOf(NodeId node) noexcept {
    return (node / kBatchStripe) % kStepBatches;
  }

  /// Gossip messages handed to the barrier senders so far (all shards).
  std::uint64_t messagesSent() const noexcept;
  /// Messages dropped because the destination was dead (CYCLON's implicit
  /// failure detection — mirrors MessageRouter::droppedDead).
  std::uint64_t droppedDead() const noexcept;
  /// Messages no registered protocol claimed (always 0 when wired right).
  std::uint64_t droppedUnroutable() const noexcept;

  /// Latency-delayed messages currently stored across all shard queues
  /// (in flight past the current tick; drains to zero only when traffic
  /// stops). Always 0 under CycleSync or latency-free timing.
  std::size_t storedInFlight() const noexcept;

  /// Timer phase offset of `node` within the cycle span — a pure hash of
  /// the node id (unlike the sequential Engine's spawn-order draws), so
  /// the jittered event schedule is identical for every thread count.
  std::uint32_t timerPhaseOf(NodeId node) const noexcept {
    return static_cast<std::uint32_t>(
        deriveStreamSeed(streamSeed_ ^ 0x7068617365ULL,  // "phase"
                         node) %
        timing_.ticksPerCycle);
  }

  Network& network() noexcept { return network_; }

 private:
  /// One buffered message awaiting its barrier.
  struct Pending {
    NodeId to = kNoNode;
    std::uint32_t seq = 0;  ///< per-sender send counter (canonical tiebreak)
    /// Arrival tick under jittered timing (send tick + latency draw);
    /// unused by the lockstep CycleSync schedule.
    std::uint64_t dueTick = 0;
    net::Message msg;       ///< sender id travels in msg.from
  };
  /// A latency-delayed message parked in a shard's delivery store: the
  /// payload lives in the worker's MessagePool, the due tick in the
  /// worker's ShardDeliveryQueue entry, and (from, seq) ride along for
  /// the canonical per-tick delivery sort.
  struct StoreRef {
    NodeId to;
    NodeId from;
    std::uint32_t seq;
    net::MessagePool::Slot slot;
  };
  /// Slot-recycled outbox bucket (one per (worker, parity, dest shard)).
  struct Bucket {
    std::vector<Pending> slots;
    std::size_t count = 0;
    /// Highest round burst this cycle (tracked when rounds are cleared;
    /// reset at the boundary) — drives the over-provision trim below.
    std::size_t cyclePeak = 0;
    /// Consecutive cycles with slots.size() far above cyclePeak. The
    /// star bootstrap funnels the whole population at one hub, sizing a
    /// few buckets to that one-off burst; once traffic has been steady
    /// and far below the high-water for kTrimAfterCycles cycles, the
    /// excess slots are released (see maintainBuffers).
    std::uint32_t excessCycles = 0;
  };
  /// Sorted-delivery index entry: where a due message lives.
  struct InRef {
    NodeId to;
    NodeId from;
    std::uint32_t seq;
    std::uint32_t srcShard;
    std::uint32_t slot;
  };

  /// Buffers sends into the owning worker's current-parity outbox.
  class BarrierSender final : public net::Transport {
   public:
    void send(NodeId to, net::Message&& msg) override;
    ShardedEngine* engine = nullptr;
    std::uint32_t shard = 0;
    /// The owning worker's context: latency draws come from the acting
    /// node's event stream (ctx->rng()), interleaved with the protocol's
    /// own draws in send order — deterministic for any thread count.
    ShardContext* ctx = nullptr;
    /// High-water payload capacities seen by this shard's sends. Slot
    /// buffers circulate with protocol scratch via swap, so every buffer
    /// is topped up to these the first time it passes through send();
    /// without that, a buffer warmed by a small message type keeps
    /// reallocating whenever it later meets a larger one.
    std::size_t entryCap = 0;
    std::size_t idCap = 0;
   };

  /// Grows per-node bookkeeping when churn spawns fresh ids.
  struct GrowthTracker final : MembershipObserver {
    explicit GrowthTracker(ShardedEngine& engine) : engine(engine) {}
    void onReserve(NodeId count) override {
      engine.eventCount_.reserve(count);
      engine.sendSeq_.reserve(count);
    }
    void onSpawn(NodeId node) override { engine.ensureNode(node); }
    void onKill(NodeId /*node*/) override {}
    ShardedEngine& engine;
  };

  /// Per-shard worker state (exclusive to one parallelFor index).
  struct Worker {
    explicit Worker(std::uint32_t shard, BarrierSender& sender)
        : ctx(shard, sender) {}
    ShardContext ctx;
    /// This cycle's alive nodes of the shard, bucketed by step batch
    /// (CycleSync) or by timer phase offset (jittered).
    std::vector<std::vector<NodeId>> worklist;
    /// Sorted index of messages due at this shard in the current round.
    std::vector<InRef> inbox;
    /// Windowed schedule only: payloads of latency-delayed messages
    /// addressed to this shard, keyed by arrival tick in `dueQueue`.
    net::MessagePool store;
    ShardDeliveryQueue<StoreRef> dueQueue;
    /// Per-tick scratch: refs popped due this tick, canonically sorted.
    std::vector<StoreRef> dueScratch;
    std::uint64_t droppedDead = 0;
    std::uint64_t droppedUnroutable = 0;
  };

  enum class Phase {
    kWorklist,    ///< bucket the shard's alive nodes (both schedules)
    kStep,        ///< lockstep: step one batch
    kDeliver,     ///< lockstep: deliver one parity round
    kWindowTick,  ///< windowed: due deliveries then timers at currentTick_
    kDeliverNow,  ///< windowed, lookahead 0: same-tick delivery sub-round
    kIngest,      ///< windowed: drain read-parity outboxes into stores
  };

  void runOneCycle();
  /// The lockstep CycleSync schedule (unchanged from the pre-windowed
  /// engine; the determinism suites pin its results bit-for-bit).
  void runLockstepCycle();
  /// The windowed jittered schedule (see file comment).
  void runJitteredCycle();
  void runPhase(std::size_t shard);
  void buildWorklist(std::uint32_t shard);
  void stepPhase(std::uint32_t shard);
  void deliverPhase(std::uint32_t shard);
  /// Windowed: deliver everything stored due <= currentTick_ (canonical
  /// order), then fire this tick's node timers.
  void windowTickPhase(std::uint32_t shard);
  /// Windowed, lookahead 0: deliver read-parity messages due at
  /// currentTick_ in canonical order; park later-due ones in the store.
  void deliverNowPhase(std::uint32_t shard);
  /// Windowed, lookahead >= 1: park every read-parity message addressed
  /// to this shard in the store (all are due at or past the horizon).
  void ingestPhase(std::uint32_t shard);
  void ensureNode(NodeId node);
  /// Cycle-boundary buffer upkeep (sequential): re-reserves every slot
  /// buffer when the observed high-water payload capacity grew this
  /// cycle, and trims buckets whose slot count has sat far above the
  /// traffic for kTrimAfterCycles cycles. Both converge within the first
  /// cycles after (re)bootstrap; afterwards this is a cheap scan of the
  /// O(threads^2) bucket headers.
  void maintainBuffers();
  Bucket& outbox(std::uint32_t worker, std::uint32_t parity,
                 std::uint32_t destShard) {
    return outboxes_[(worker * 2 + parity) * shardCount_ + destShard];
  }
  /// Reseeds ctx's RNG to the acting node's next event stream.
  void seedEventRng(ShardContext& ctx, NodeId node) {
    ctx.rng_.reseed(deriveStreamSeed(streamSeed_, node, eventCount_[node]++));
  }
  std::uint64_t pendingAt(std::uint32_t parity) const;

  Network& network_;
  const std::uint32_t shardCount_;
  const std::uint64_t streamSeed_;
  const TimingConfig timing_;
  TaskPool pool_;
  GrowthTracker growth_{*this};
  std::vector<ShardedProtocol*> protocols_;
  std::vector<Control*> controls_;
  std::vector<BarrierSender> senders_;
  std::vector<Worker> workers_;
  /// [worker][parity][destShard] flattened (see outbox()).
  std::vector<Bucket> outboxes_;
  /// Per-node monotone event counter: the `index` of every
  /// deriveStreamSeed(seed, node, index) draw (sized to totalCreated()).
  std::vector<std::uint32_t> eventCount_;
  /// Per-node monotone send counter: the canonical delivery tiebreak.
  std::vector<std::uint32_t> sendSeq_;
  std::uint64_t cycle_ = 0;
  /// Slot-buffer capacities all outbox slots were last warmed to (see
  /// rewarmBuffers); lag the senders' high-water caps only while those
  /// are still growing, i.e. during the first cycles.
  std::size_t warmedEntryCap_ = 0;
  std::size_t warmedIdCap_ = 0;
  std::uint32_t parity_ = 0;       ///< outbox side written by this phase
  std::uint32_t currentBatch_ = 0;
  /// Windowed schedule state (coordinator-written between barriers).
  std::uint64_t currentTick_ = 0;
  std::uint64_t cycleStartTick_ = 0;
  /// Per phase offset: 1 when any shard has timers at that offset this
  /// cycle (coordinator aggregate of the worklists).
  std::vector<std::uint8_t> offsetOccupied_;
  /// Single persistent phase thunk: parallelFor never boxes a fresh
  /// closure, keeping steady-state cycles allocation-free.
  Phase phase_ = Phase::kWorklist;
  std::function<void(std::size_t)> phaseFn_;
};

}  // namespace vs07::sim
