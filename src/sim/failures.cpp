#include "sim/failures.hpp"

#include <cmath>

#include "common/expect.hpp"
#include "sim/network_model.hpp"

namespace vs07::sim {

std::vector<NodeId> killRandomFraction(Network& network, double fraction,
                                       Rng& rng) {
  VS07_EXPECT(fraction >= 0.0 && fraction <= 1.0);
  const auto count = static_cast<std::uint32_t>(
      std::llround(fraction * static_cast<double>(network.aliveCount())));
  return killRandomCount(network, count, rng);
}

std::vector<NodeId> killRandomCount(Network& network, std::uint32_t count,
                                    Rng& rng) {
  VS07_EXPECT(count <= network.aliveCount());
  std::vector<NodeId> killed;
  killed.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const NodeId victim = network.randomAlive(rng);
    network.kill(victim);
    killed.push_back(victim);
  }
  return killed;
}

std::vector<NodeId> killContiguousArc(Network& network, double fraction,
                                      Rng& rng) {
  // Arc selection is shared with PartitionSchedule::splitRingArc — same
  // ring order, same single rng draw — so the §5.1 scenario is
  // bit-identical whether the arc is killed or partitioned off (pinned
  // by tests/sim/partition_fold_test.cpp).
  std::vector<NodeId> killed = contiguousRingArc(network, fraction, rng);
  for (const NodeId victim : killed) network.kill(victim);
  return killed;
}

}  // namespace vs07::sim
