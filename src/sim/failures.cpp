#include "sim/failures.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace vs07::sim {

std::vector<NodeId> killRandomFraction(Network& network, double fraction,
                                       Rng& rng) {
  VS07_EXPECT(fraction >= 0.0 && fraction <= 1.0);
  const auto count = static_cast<std::uint32_t>(
      std::llround(fraction * static_cast<double>(network.aliveCount())));
  return killRandomCount(network, count, rng);
}

std::vector<NodeId> killRandomCount(Network& network, std::uint32_t count,
                                    Rng& rng) {
  VS07_EXPECT(count <= network.aliveCount());
  std::vector<NodeId> killed;
  killed.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const NodeId victim = network.randomAlive(rng);
    network.kill(victim);
    killed.push_back(victim);
  }
  return killed;
}

std::vector<NodeId> killContiguousArc(Network& network, double fraction,
                                      Rng& rng) {
  VS07_EXPECT(fraction >= 0.0 && fraction <= 1.0);
  const auto count = static_cast<std::uint32_t>(
      std::llround(fraction * static_cast<double>(network.aliveCount())));
  std::vector<NodeId> killed;
  if (count == 0) return killed;

  // Ring order = alive nodes sorted by sequence id (the converged ring).
  std::vector<NodeId> ring(network.aliveIds());
  std::sort(ring.begin(), ring.end(), [&network](NodeId a, NodeId b) {
    const auto pa = network.seqId(a);
    const auto pb = network.seqId(b);
    if (pa != pb) return pa < pb;
    return a < b;
  });

  const std::size_t start = rng.below(ring.size());
  killed.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const NodeId victim = ring[(start + i) % ring.size()];
    network.kill(victim);
    killed.push_back(victim);
  }
  return killed;
}

}  // namespace vs07::sim
