#include "sim/network.hpp"

namespace vs07::sim {

Network::Network(std::uint32_t initialSize, std::uint64_t seed)
    : rng_(seed), initialSize_(initialSize), initialSurvivors_(initialSize) {
  VS07_EXPECT(initialSize > 0);
  alive_.reserve(initialSize);
  seqIds_.reserve(initialSize);
  joinCycle_.reserve(initialSize);
  aliveIds_.reserve(initialSize);
  alivePos_.reserve(initialSize);
  for (std::uint32_t i = 0; i < initialSize; ++i) spawn(/*atCycle=*/0);
}

NodeId Network::randomAlive(Rng& rng) const {
  VS07_EXPECT(!aliveIds_.empty());
  return aliveIds_[rng.below(aliveIds_.size())];
}

void Network::setSeqId(NodeId node, SequenceId id) {
  VS07_EXPECT(node < seqIds_.size());
  seqIds_[node] = id;
}

NodeId Network::spawn(std::uint64_t atCycle) {
  const auto id = static_cast<NodeId>(alive_.size());
  alive_.push_back(1);
  seqIds_.push_back(rng_());
  joinCycle_.push_back(atCycle);
  alivePos_.push_back(static_cast<std::uint32_t>(aliveIds_.size()));
  aliveIds_.push_back(id);
  for (auto* obs : observers_) obs->onSpawn(id);
  return id;
}

void Network::kill(NodeId node) {
  VS07_EXPECT(node < alive_.size());
  VS07_EXPECT(alive_[node] != 0);
  alive_[node] = 0;
  // O(1) removal from the alive list.
  const std::uint32_t pos = alivePos_[node];
  const NodeId last = aliveIds_.back();
  aliveIds_[pos] = last;
  alivePos_[last] = pos;
  aliveIds_.pop_back();
  alivePos_[node] = kNoNode;
  if (node < initialSize_) --initialSurvivors_;
  for (auto* obs : observers_) obs->onKill(node);
}

void Network::addObserver(MembershipObserver& observer) {
  observers_.push_back(&observer);
  observer.onReserve(totalCreated());
  for (NodeId id = 0; id < totalCreated(); ++id)
    observer.onSpawn(id);  // announce the existing id space
}

void Network::removeObserver(MembershipObserver& observer) {
  std::erase(observers_, &observer);
}

}  // namespace vs07::sim
