#include "sim/sharded_engine.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace vs07::sim {

namespace {
/// Validates the worker count before any member (notably the TaskPool,
/// whose 0 means "hardware default") is constructed from it.
std::uint32_t checkedThreads(std::uint32_t threads) {
  VS07_EXPECT(threads >= 1);
  return threads;
}

/// Validates the timing configuration up front: the lockstep CycleSync
/// schedule has no tick axis to delay messages along, so a latency model
/// requires jittered timing (where the windowed schedule handles it).
TimingConfig checkedTiming(TimingConfig timing) {
  VS07_EXPECT(timing.ticksPerCycle >= 1);
  VS07_EXPECT((timing.mode == TimingMode::kJitteredPeriodic ||
               timing.latency.kind == LatencyModel::Kind::kNone) &&
              "sharded CycleSync is latency-free; use jittered timing "
              "for latency models");
  return timing;
}

/// Canonical delivery order within one tick: by destination, then
/// sender, then the sender's send sequence — independent of which shard
/// buffered what and of heap pop order.
struct CanonicalOrder {
  template <typename Ref>
  bool operator()(const Ref& a, const Ref& b) const noexcept {
    if (a.to != b.to) return a.to < b.to;
    if (a.from != b.from) return a.from < b.from;
    return a.seq < b.seq;
  }
};
}  // namespace

ShardedEngine::ShardedEngine(Network& network, std::uint64_t seed,
                             std::uint32_t threads, TimingConfig timing)
    : network_(network),
      shardCount_(checkedThreads(threads)),
      streamSeed_(seed),
      timing_(checkedTiming(timing)),
      pool_(shardCount_) {
  // senders_ must never reallocate: each worker's ShardContext keeps a
  // Transport* into it.
  senders_.resize(shardCount_);
  // Lockstep cycles bucket the worklist by step batch; the windowed
  // schedule buckets by timer phase offset (one bucket per tick of the
  // cycle span — the per-tick population N*threads/span is what bounds
  // in-flight traffic there, no sub-batching needed).
  const std::size_t worklistBuckets =
      timing_.mode == TimingMode::kCycleSync ? kStepBatches
                                             : timing_.ticksPerCycle;
  workers_.reserve(shardCount_);
  for (std::uint32_t s = 0; s < shardCount_; ++s) {
    senders_[s].engine = this;
    senders_[s].shard = s;
    workers_.emplace_back(s, senders_[s]);
    workers_[s].worklist.resize(worklistBuckets);
    senders_[s].ctx = &workers_[s].ctx;
  }
  outboxes_.resize(static_cast<std::size_t>(shardCount_) * 2 * shardCount_);
  offsetOccupied_.resize(timing_.ticksPerCycle, 0);
  phaseFn_ = [this](std::size_t shard) { runPhase(shard); };
  // Replays existing nodes via onSpawn, sizing the per-node counters.
  network_.addObserver(growth_);
}

ShardedEngine::~ShardedEngine() {
  // The Network is passed by reference and may outlive this engine (e.g.
  // a Scenario rebuilding its engine); leaving growth_ registered would
  // dangle on the next spawn/kill.
  network_.removeObserver(growth_);
}

void ShardedEngine::addProtocol(ShardedProtocol& protocol) {
  protocols_.push_back(&protocol);
  protocol.onShardedAttach(shardCount_);
}

void ShardedEngine::addControl(Control& control) {
  controls_.push_back(&control);
}

void ShardedEngine::run(std::uint64_t cycles) {
  for (std::uint64_t i = 0; i < cycles; ++i) runOneCycle();
}

void ShardedEngine::ensureNode(NodeId node) {
  if (node >= eventCount_.size()) {
    eventCount_.resize(node + 1, 0);
    sendSeq_.resize(node + 1, 0);
  }
}

void ShardedEngine::BarrierSender::send(NodeId to, net::Message&& msg) {
  countSend();
  ShardedEngine& e = *engine;
  VS07_EXPECT(msg.from < e.sendSeq_.size());
  Bucket& bucket = e.outbox(shard, e.parity_, e.shardOf(to));
  if (bucket.count == bucket.slots.size()) {
    // Grow geometrically and pre-warm the new slots' payload buffers.
    // Per-bucket traffic fluctuates cycle to cycle, so its high-water
    // mark keeps creeping for a long time after warm-up; size-by-one
    // growth would turn every creep into a steady-state allocation (a
    // cold slot buffer gets swapped out to a scratch message that must
    // then regrow). With 1.5x slack plus warm buffers, creep lands on
    // pre-warmed slots and steady-state cycles stay allocation-free.
    const std::size_t old = bucket.slots.size();
    const std::size_t grown = std::max<std::size_t>(old + old / 2, 8);
    bucket.slots.resize(grown);
    for (std::size_t i = old; i < grown; ++i) {
      bucket.slots[i].msg.entries.reserve(entryCap);
      bucket.slots[i].msg.ids.reserve(idCap);
    }
  }
  Pending& slot = bucket.slots[bucket.count++];
  // Arrival tick: latency drawn from the acting node's event stream, in
  // send order, interleaved with the protocol's own draws — part of the
  // per-node stream, so independent of thread count. Under CycleSync
  // latency is kNone (ctor contract) and draw() consumes no randomness,
  // keeping the lockstep schedule's draws bit-identical.
  slot.dueTick = e.currentTick_ + e.timing_.latency.draw(ctx->rng());
  // Swap the payload into the recycled slot; the caller's message walks
  // away holding the slot's previous (reset) buffers.
  slot.msg.reset();
  swap(slot.msg, msg);
  // Keep every circulating buffer at the shard's high-water capacity:
  // the buffer handed back to the caller becomes protocol scratch, and a
  // scratch smaller than the largest message type (VICINITY offers pool
  // ~2 view-lengths of candidates before trimming) would reallocate the
  // next time that type fills it. Topping up here moves each buffer's
  // one-time growth to its first circulation instead of an unbounded
  // warm-up tail, which is what keeps steady-state cycles alloc-free.
  entryCap = std::max(entryCap, slot.msg.entries.capacity());
  idCap = std::max(idCap, slot.msg.ids.capacity());
  if (msg.entries.capacity() < entryCap) msg.entries.reserve(entryCap);
  if (msg.ids.capacity() < idCap) msg.ids.reserve(idCap);
  slot.to = to;
  // msg.from is owned by the acting shard (from == the stepping/replying
  // node), so this counter increment is race-free.
  slot.seq = e.sendSeq_[slot.msg.from]++;
}

std::uint64_t ShardedEngine::pendingAt(std::uint32_t parity) const {
  std::uint64_t total = 0;
  for (std::uint32_t w = 0; w < shardCount_; ++w)
    for (std::uint32_t d = 0; d < shardCount_; ++d)
      total += outboxes_[(w * 2 + parity) * shardCount_ + d].count;
  return total;
}

void ShardedEngine::runOneCycle() {
  if (timing_.mode == TimingMode::kCycleSync) {
    runLockstepCycle();
  } else {
    runJitteredCycle();
  }
}

void ShardedEngine::runLockstepCycle() {
  phase_ = Phase::kWorklist;
  pool_.parallelFor(shardCount_, phaseFn_);
  for (std::uint32_t b = 0; b < kStepBatches; ++b) {
    currentBatch_ = b;
    phase_ = Phase::kStep;
    pool_.parallelFor(shardCount_, phaseFn_);
    // Deliver rounds until the batch quiesces (CYCLON/VICINITY: request
    // round, then reply round, then silence).
    while (pendingAt(parity_) > 0) {
      parity_ ^= 1u;  // fresh sends go to the other side
      phase_ = Phase::kDeliver;
      pool_.parallelFor(shardCount_, phaseFn_);
      // The side just consumed is clear for reuse (slots stay allocated).
      const std::uint32_t consumed = parity_ ^ 1u;
      for (std::uint32_t w = 0; w < shardCount_; ++w)
        for (std::uint32_t d = 0; d < shardCount_; ++d) {
          Bucket& bucket = outbox(w, consumed, d);
          bucket.cyclePeak = std::max(bucket.cyclePeak, bucket.count);
          bucket.count = 0;
        }
    }
  }
  // Cycle boundary: sequential, like Engine::finishCycle. Membership
  // mutation (churn) is legal only here.
  ++cycle_;
  maintainBuffers();
  for (auto* control : controls_) control->execute(cycle_);
}

void ShardedEngine::runJitteredCycle() {
  const std::uint64_t start = cycleStartTick_;
  const std::uint32_t span = timing_.ticksPerCycle;
  const std::uint64_t end = start + span;
  const std::uint32_t lookahead = timing_.latency.minLatencyTicks();

  phase_ = Phase::kWorklist;
  pool_.parallelFor(shardCount_, phaseFn_);
  // Coordinator aggregate: which phase offsets have timers anywhere.
  // (assign() reuses the vector's capacity — no steady-state allocation.)
  offsetOccupied_.assign(span, 0);
  for (const auto& w : workers_)
    for (std::uint32_t o = 0; o < span; ++o)
      if (!w.worklist[o].empty()) offsetOccupied_[o] = 1;

  std::uint32_t nextOffset = 0;  // earliest timer offset not yet executed
  while (true) {
    while (nextOffset < span && !offsetOccupied_[nextOffset]) ++nextOffset;
    // Next event time across all shards: the earlier of the next
    // occupied timer tick and the earliest stored delivery. Stored
    // entries due past the cycle end stay parked — they carry over to a
    // later cycle's windows (in-flight traffic crosses cycle
    // boundaries; the killed-destination check at delivery handles
    // churn in between).
    std::uint64_t nextTime = nextOffset < span ? start + nextOffset : end;
    for (const auto& w : workers_)
      nextTime = std::min(nextTime, w.dueQueue.nextDueTickOr(end));
    if (nextTime >= end) break;
    // Safe horizon: everything below min(next event) + lookahead can run
    // without coordination — any send inside the window arrives at
    // dueTick >= sendTick + lookahead >= horizon. Lookahead 0 (no
    // latency model: sends are immediate) degrades to a 1-tick window
    // whose same-tick request/reply cascade runs as sub-rounds below.
    const std::uint64_t horizon =
        lookahead == 0 ? nextTime + 1
                       : std::min<std::uint64_t>(nextTime + lookahead, end);
    for (std::uint64_t t = nextTime; t < horizon; ++t) {
      currentTick_ = t;
      phase_ = Phase::kWindowTick;
      pool_.parallelFor(shardCount_, phaseFn_);
      if (lookahead == 0) {
        // Sub-rounds until the tick quiesces: immediate replies land at
        // the same tick, anything a latency draw pushed later was parked
        // in the stores by deliverNowPhase.
        while (pendingAt(parity_) > 0) {
          parity_ ^= 1u;
          phase_ = Phase::kDeliverNow;
          pool_.parallelFor(shardCount_, phaseFn_);
        }
      } else {
        // Everything sent this tick is due at or past the horizon: park
        // it in the destination shards' stores before the next tick's
        // horizon query looks at the due queues.
        parity_ ^= 1u;
        phase_ = Phase::kIngest;
        pool_.parallelFor(shardCount_, phaseFn_);
      }
      nextOffset =
          std::max(nextOffset, static_cast<std::uint32_t>(t - start) + 1);
    }
  }
  currentTick_ = end;
  cycleStartTick_ = end;
  // Cycle boundary: sequential, exactly like the lockstep schedule.
  ++cycle_;
  maintainBuffers();
  for (auto* control : controls_) control->execute(cycle_);
}

void ShardedEngine::maintainBuffers() {
  // Trim: release slots of buckets sized by a one-off burst (the star
  // bootstrap funnels every node's first exchanges at one hub, leaving a
  // few buckets provisioned for the whole population). Hysteresis keeps
  // steady-state traffic from ever trimming — and thus from regrowing.
  for (auto& bucket : outboxes_) {
    const bool excess = bucket.slots.size() > 8 &&
                        bucket.slots.size() > 4 * bucket.cyclePeak;
    bucket.excessCycles = excess ? bucket.excessCycles + 1 : 0;
    if (bucket.excessCycles >= kTrimAfterCycles) {
      const std::size_t target =
          std::max<std::size_t>(2 * bucket.cyclePeak, 8);
      // Keep the first `target` slots (their payload buffers are warm);
      // moving them into a right-sized vector releases the rest.
      std::vector<Pending> kept(
          std::make_move_iterator(bucket.slots.begin()),
          std::make_move_iterator(bucket.slots.begin() + target));
      bucket.slots = std::move(kept);
      bucket.excessCycles = 0;
    }
  }
  // Re-warm: slots first used long after creation were pre-warmed when
  // the high-water payload capacity was still immature; a record burst
  // reaching them mid-run would pay a late reallocation. Whenever the
  // cap grows (first cycles only), bring every slot buffer up to it in
  // one sequential sweep — afterwards this is a pair of comparisons.
  std::size_t entryCap = warmedEntryCap_;
  std::size_t idCap = warmedIdCap_;
  for (const auto& sender : senders_) {
    entryCap = std::max(entryCap, sender.entryCap);
    idCap = std::max(idCap, sender.idCap);
  }
  // Windowed-schedule slack: per-tick bucket traffic varies with every
  // cycle's latency draws (delivery ticks move, and replies move with
  // them), so per-bucket records keep creeping long after warm-up — and
  // a record reached mid-cycle grows the bucket then, inside the
  // parallel hot path. Growing here instead, at the sequential cycle
  // boundary, absorbs the creep; the trigger-at-2x / grow-to-3x band
  // (inside trim's 4x ceiling, so growth and trim never oscillate)
  // keeps the boundary growth itself from firing on every +1 creep. A
  // mid-cycle growth would then need the record to jump past 2x, which
  // stationary traffic does not do. The lockstep schedule consumes
  // buckets once per batch, not per tick, and peaks during warm-up — no
  // slack needed there (and none taken: at 10M nodes tripling every
  // bucket is real memory).
  if (timing_.mode != TimingMode::kCycleSync) {
    for (auto& bucket : outboxes_) {
      if (bucket.cyclePeak > 0 && bucket.slots.size() < 2 * bucket.cyclePeak) {
        const std::size_t old = bucket.slots.size();
        bucket.slots.resize(3 * bucket.cyclePeak);
        for (std::size_t i = old; i < bucket.slots.size(); ++i) {
          bucket.slots[i].msg.entries.reserve(entryCap);
          bucket.slots[i].msg.ids.reserve(idCap);
        }
      }
    }
    // In-flight store slack, same reasoning: the record of messages
    // stored simultaneously shifts with arrival peaks, and a cold pool
    // slot minted at a mid-cycle record swaps the sender's warm buffer
    // away (see MessagePool::reserveWarm).
    for (auto& w : workers_) {
      const std::size_t peak = w.store.peakInUse();
      if (peak == 0) continue;
      if (w.store.capacity() < 2 * peak)
        w.store.reserveWarm(3 * peak, entryCap, idCap);
      if (w.dueQueue.capacity() < 2 * peak) w.dueQueue.reserve(3 * peak);
      if (w.dueScratch.capacity() < 2 * peak) w.dueScratch.reserve(3 * peak);
    }
  }
  for (auto& bucket : outboxes_) bucket.cyclePeak = 0;
  if (entryCap == warmedEntryCap_ && idCap == warmedIdCap_) return;
  warmedEntryCap_ = entryCap;
  warmedIdCap_ = idCap;
  for (auto& sender : senders_) {
    // Sync every shard to the global max so growth-time pre-warming of
    // fresh slots (see send()) uses the mature capacity.
    sender.entryCap = entryCap;
    sender.idCap = idCap;
  }
  for (auto& bucket : outboxes_)
    for (auto& slot : bucket.slots) {
      if (slot.msg.entries.capacity() < entryCap)
        slot.msg.entries.reserve(entryCap);
      if (slot.msg.ids.capacity() < idCap) slot.msg.ids.reserve(idCap);
    }
}

void ShardedEngine::runPhase(std::size_t shard) {
  const auto s = static_cast<std::uint32_t>(shard);
  switch (phase_) {
    case Phase::kWorklist:
      buildWorklist(s);
      break;
    case Phase::kStep:
      stepPhase(s);
      break;
    case Phase::kDeliver:
      deliverPhase(s);
      break;
    case Phase::kWindowTick:
      windowTickPhase(s);
      break;
    case Phase::kDeliverNow:
      deliverNowPhase(s);
      break;
    case Phase::kIngest:
      ingestPhase(s);
      break;
  }
}

void ShardedEngine::buildWorklist(std::uint32_t shard) {
  Worker& w = workers_[shard];
  for (auto& bucket : w.worklist) bucket.clear();
  // aliveIds() order is a pure function of the spawn/kill history (see
  // Network), so every shard's worklist — and with it the node-local
  // execution order — is identical across runs and thread counts.
  if (timing_.mode == TimingMode::kCycleSync) {
    for (const NodeId node : network_.aliveIds())
      if (node % shardCount_ == shard)
        w.worklist[batchOf(node)].push_back(node);
  } else {
    for (const NodeId node : network_.aliveIds())
      if (node % shardCount_ == shard)
        w.worklist[timerPhaseOf(node)].push_back(node);
  }
}

void ShardedEngine::stepPhase(std::uint32_t shard) {
  Worker& w = workers_[shard];
  for (const NodeId node : w.worklist[currentBatch_]) {
    for (auto* protocol : protocols_) {
      seedEventRng(w.ctx, node);
      protocol->shardStep(node, w.ctx);
    }
  }
}

void ShardedEngine::deliverPhase(std::uint32_t shard) {
  Worker& w = workers_[shard];
  const std::uint32_t readParity = parity_ ^ 1u;
  // Gather the index of everything addressed to this shard. Reading other
  // workers' read-side buckets is safe: they were last written before the
  // barrier that started this phase, and this phase only writes the
  // opposite parity.
  w.inbox.clear();
  for (std::uint32_t src = 0; src < shardCount_; ++src) {
    const Bucket& bucket = outbox(src, readParity, shard);
    for (std::size_t i = 0; i < bucket.count; ++i) {
      const Pending& p = bucket.slots[i];
      w.inbox.push_back({p.to, p.msg.from, p.seq, src,
                         static_cast<std::uint32_t>(i)});
    }
  }
  // Canonical order: by destination, then sender, then the sender's send
  // sequence — independent of which shard buffered what.
  std::sort(w.inbox.begin(), w.inbox.end(), CanonicalOrder{});
  for (const InRef& ref : w.inbox) {
    const Pending& p = outbox(ref.srcShard, readParity, shard).slots[ref.slot];
    if (!network_.isAlive(p.to)) {
      // Stale view entry pointed at a dead node — the message vanishes,
      // which is exactly CYCLON's implicit failure detection.
      ++w.droppedDead;
      continue;
    }
    seedEventRng(w.ctx, p.to);
    bool handled = false;
    for (auto* protocol : protocols_) {
      if (protocol->shardDeliver(p.to, p.msg, w.ctx)) {
        handled = true;
        break;
      }
    }
    if (!handled) ++w.droppedUnroutable;
  }
}

void ShardedEngine::windowTickPhase(std::uint32_t shard) {
  Worker& w = workers_[shard];
  // Deliveries before timers within a tick — the same intra-tick
  // priority order as the sequential engine's event queue.
  w.dueScratch.clear();
  w.dueQueue.popDueInto(currentTick_, w.dueScratch);
  std::sort(w.dueScratch.begin(), w.dueScratch.end(), CanonicalOrder{});
  for (const StoreRef& ref : w.dueScratch) {
    if (!network_.isAlive(ref.to)) {
      // The destination died (churn at a cycle boundary) while the
      // message was in flight — implicit failure detection, as in the
      // lockstep deliver phase.
      ++w.droppedDead;
      w.store.release(ref.slot);
      continue;
    }
    net::Message& msg = w.store.at(ref.slot);
    seedEventRng(w.ctx, ref.to);
    bool handled = false;
    for (auto* protocol : protocols_) {
      if (protocol->shardDeliver(ref.to, msg, w.ctx)) {
        handled = true;
        break;
      }
    }
    if (!handled) ++w.droppedUnroutable;
    w.store.release(ref.slot);
  }
  // This tick's node timers. Worklists are rebuilt from aliveIds() each
  // cycle and membership mutates only at cycle boundaries, so every
  // listed node is alive.
  const auto offset = static_cast<std::uint32_t>(currentTick_ -
                                                 cycleStartTick_);
  for (const NodeId node : w.worklist[offset]) {
    for (auto* protocol : protocols_) {
      seedEventRng(w.ctx, node);
      protocol->shardStep(node, w.ctx);
    }
  }
}

void ShardedEngine::deliverNowPhase(std::uint32_t shard) {
  Worker& w = workers_[shard];
  const std::uint32_t readParity = parity_ ^ 1u;
  w.inbox.clear();
  for (std::uint32_t src = 0; src < shardCount_; ++src) {
    Bucket& bucket = outbox(src, readParity, shard);
    for (std::size_t i = 0; i < bucket.count; ++i) {
      Pending& p = bucket.slots[i];
      if (p.dueTick > currentTick_) {
        // A latency draw pushed this arrival past the current tick: park
        // it in the store; a later window's tick delivers it. (checkIn
        // swaps buffers, leaving the outbox slot warm for reuse.)
        const NodeId from = p.msg.from;
        const net::MessagePool::Slot slot = w.store.checkIn(p.to, p.msg);
        w.dueQueue.push(p.dueTick, StoreRef{p.to, from, p.seq, slot});
      } else {
        w.inbox.push_back({p.to, p.msg.from, p.seq, src,
                           static_cast<std::uint32_t>(i)});
      }
    }
  }
  std::sort(w.inbox.begin(), w.inbox.end(), CanonicalOrder{});
  for (const InRef& ref : w.inbox) {
    const Pending& p = outbox(ref.srcShard, readParity, shard).slots[ref.slot];
    if (!network_.isAlive(p.to)) {
      ++w.droppedDead;
      continue;
    }
    seedEventRng(w.ctx, p.to);
    bool handled = false;
    for (auto* protocol : protocols_) {
      if (protocol->shardDeliver(p.to, p.msg, w.ctx)) {
        handled = true;
        break;
      }
    }
    if (!handled) ++w.droppedUnroutable;
  }
  // Reset the consumed read-side buckets (dst-owned here: each bucket is
  // read by exactly one destination shard, and the coordinator's
  // pendingAt() check runs after the barrier). Slots stay allocated.
  for (std::uint32_t src = 0; src < shardCount_; ++src) {
    Bucket& bucket = outbox(src, readParity, shard);
    bucket.cyclePeak = std::max(bucket.cyclePeak, bucket.count);
    bucket.count = 0;
  }
}

void ShardedEngine::ingestPhase(std::uint32_t shard) {
  Worker& w = workers_[shard];
  const std::uint32_t readParity = parity_ ^ 1u;
  for (std::uint32_t src = 0; src < shardCount_; ++src) {
    Bucket& bucket = outbox(src, readParity, shard);
    for (std::size_t i = 0; i < bucket.count; ++i) {
      Pending& p = bucket.slots[i];
      const NodeId from = p.msg.from;
      const net::MessagePool::Slot slot = w.store.checkIn(p.to, p.msg);
      w.dueQueue.push(p.dueTick, StoreRef{p.to, from, p.seq, slot});
    }
    bucket.cyclePeak = std::max(bucket.cyclePeak, bucket.count);
    bucket.count = 0;
  }
}

std::uint64_t ShardedEngine::messagesSent() const noexcept {
  std::uint64_t total = 0;
  for (const auto& sender : senders_) total += sender.sent();
  return total;
}

std::uint64_t ShardedEngine::droppedDead() const noexcept {
  std::uint64_t total = 0;
  for (const auto& worker : workers_) total += worker.droppedDead;
  return total;
}

std::uint64_t ShardedEngine::droppedUnroutable() const noexcept {
  std::uint64_t total = 0;
  for (const auto& worker : workers_) total += worker.droppedUnroutable;
  return total;
}

std::size_t ShardedEngine::storedInFlight() const noexcept {
  std::size_t total = 0;
  for (const auto& worker : workers_) total += worker.dueQueue.size();
  return total;
}

}  // namespace vs07::sim
