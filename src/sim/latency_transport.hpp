// LatencyTransport — message delivery through the engine's event queue.
//
// Every send() draws a latency from a LatencyModel (fixed / uniform /
// exponential ticks) and schedules the delivery on the engine's shared
// scheduler at delivery priority, so in-flight traffic interleaves with
// node gossip timers in deterministic (dueTick, priority, seq) order.
// This is the event-core replacement for pumping a DelayedTransport once
// per cycle: no side heap, no separate clock, and latencies are
// meaningful at sub-cycle granularity under jittered timing. Payloads
// ride the engine's MessagePool (Engine::scheduleMessageDelivery), so a
// steady-state cycle's in-flight traffic is allocation-free.
//
// When a sim::NetworkModel is attached, every send is additionally
// resolved against the per-link condition layer at scheduling time:
// loss and partition vetoes drop the message before it ever reaches the
// queue, duplication schedules extra copies, and cluster latency /
// reordering / egress queueing fold into the delivery delay. The
// clean-link path (fate = one copy, no extra delay) stays
// allocation-free and takes the same pooled route as the model-less
// transport; only duplication copies a payload.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "net/transport.hpp"
#include "sim/engine.hpp"
#include "sim/network_model.hpp"
#include "sim/timing.hpp"

namespace vs07::sim {

/// net::Transport whose deliveries are events on an Engine's queue.
/// Non-owning: engine and sink must outlive the transport.
class LatencyTransport final : public net::Transport {
 public:
  LatencyTransport(Engine& engine, net::DeliverySink& sink,
                   LatencyModel latency, std::uint64_t seed);
  LatencyTransport(Engine& engine, net::DeliverFn deliver,
                   LatencyModel latency, std::uint64_t seed);

  /// Schedules delivery `latency.draw()` ticks from the engine's current
  /// tick. A zero-tick draw still goes through the queue (it runs at the
  /// current tick, after already pending same-tick deliveries). With a
  /// network model attached, the message may instead be dropped
  /// (loss/partition), duplicated, or delayed further (reorder jitter,
  /// cluster latency, egress queueing) — all decided here, at
  /// scheduling time.
  void send(NodeId to, net::Message&& msg) override;

  /// Attaches the per-link condition layer (nullptr detaches). The
  /// model must outlive the transport; its counters record what
  /// happened to this transport's traffic.
  void setNetworkModel(NetworkModel* model) noexcept { model_ = model; }
  NetworkModel* networkModel() const noexcept { return model_; }

  /// Messages scheduled on the engine but not yet delivered (counts this
  /// transport's traffic only).
  std::size_t inFlight() const noexcept { return inFlight_; }

  const LatencyModel& latency() const noexcept { return latency_; }

 private:
  /// Inner sink the engine delivers to: maintains the in-flight counter,
  /// then forwards to the downstream sink.
  struct CountingSink final : net::DeliverySink {
    explicit CountingSink(LatencyTransport& owner) : owner(owner) {}
    void deliver(NodeId to, net::Message&& msg) override {
      --owner.inFlight_;
      owner.sink_->deliver(to, std::move(msg));
    }
    LatencyTransport& owner;
  };

  Engine& engine_;
  net::SinkRef sink_;
  CountingSink counting_{*this};
  LatencyModel latency_;
  Rng rng_;
  NetworkModel* model_ = nullptr;
  std::size_t inFlight_ = 0;
};

}  // namespace vs07::sim
