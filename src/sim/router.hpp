// Message routing from a Transport's delivery sink to protocol handlers.
//
// The simulator installs one MessageRouter as the DeliverySink of whatever
// transport stack it builds; protocols register per message kind. Messages
// addressed to dead nodes are counted and dropped (a dead node neither
// replies to gossip nor forwards data), which is precisely how CYCLON's
// implicit failure detection and the paper's lost-forward semantics work.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <utility>

#include "net/delivery_sink.hpp"
#include "net/message.hpp"
#include "sim/network.hpp"

namespace vs07::sim {

/// Dispatches delivered messages to per-kind handlers, dropping traffic to
/// dead nodes. Implements net::DeliverySink, so transports call it with
/// one virtual dispatch and no std::function box on the hot path.
class MessageRouter final : public net::DeliverySink {
 public:
  using Handler = std::function<void(NodeId to, const net::Message&)>;

  explicit MessageRouter(const Network& network) : network_(&network) {}

  /// Registers the handler for one (kind, channel) pair (overwrites).
  void route(net::MessageKind kind, Handler handler,
             std::uint8_t channel = 0);

  // net::DeliverySink — dispatch to the registered handler. Handlers see
  // the message by const reference; the buffer is recycled by the caller
  // once the handler returns.
  void deliver(NodeId to, net::Message&& msg) override;

  /// Convenience for tests and ad-hoc injection: copies the message into
  /// the move path.
  void deliver(NodeId to, const net::Message& msg) {
    net::Message copy = msg;
    deliver(to, std::move(copy));
  }

  /// Messages dropped because the destination was dead.
  std::uint64_t droppedDead() const noexcept { return droppedDead_; }

  /// Messages dropped because no handler was registered for their
  /// (kind, channel) slot. Always zero in a correctly wired system —
  /// the integration suites assert it — but under latency models a
  /// message can legitimately outlive the session that owned its slot,
  /// so delivery must degrade to counting, not to a crash.
  std::uint64_t droppedUnroutable() const noexcept {
    return droppedUnroutable_;
  }

 private:
  static constexpr std::size_t kKinds = net::kMessageKinds + 1;
  static std::size_t slot(net::MessageKind kind, std::uint8_t channel);

  const Network* network_;
  std::array<Handler, kKinds*(net::kMaxChannel + 1)> handlers_{};
  std::uint64_t droppedDead_ = 0;
  std::uint64_t droppedUnroutable_ = 0;
};

}  // namespace vs07::sim
