#include "sim/network_model.hpp"

#include <algorithm>
#include <cmath>

namespace vs07::sim {

// -- GilbertElliottLink --------------------------------------------------

void GilbertElliottLink::apply(NodeId src, NodeId dst, std::uint64_t /*tick*/,
                               LinkFate& fate, Rng& rng) {
  if (fate.copies == 0) return;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(src) << 32) | static_cast<std::uint64_t>(dst);
  auto [it, fresh] = bad_.try_emplace(key, 0);
  (void)fresh;  // fresh links start Good and advance like any other
  // Advance the chain once per crossing (event-driven: idle links keep
  // their state, which only matters relative to their own traffic).
  const bool wasBad = it->second != 0;
  const double flip = wasBad ? params_.pBadToGood : params_.pGoodToBad;
  if (rng.chance(flip)) it->second = wasBad ? 0 : 1;
  const double loss = it->second != 0 ? params_.lossBad : params_.lossGood;
  if (rng.chance(loss)) fate.copies = 0;
}

// -- ring helpers --------------------------------------------------------

std::vector<NodeId> ringOrder(const Network& network) {
  std::vector<NodeId> ring(network.aliveIds());
  std::sort(ring.begin(), ring.end(), [&network](NodeId a, NodeId b) {
    const auto pa = network.seqId(a);
    const auto pb = network.seqId(b);
    if (pa != pb) return pa < pb;
    return a < b;
  });
  return ring;
}

std::vector<NodeId> contiguousRingArc(const Network& network, double fraction,
                                      Rng& rng) {
  VS07_EXPECT(fraction >= 0.0 && fraction <= 1.0);
  const auto count = static_cast<std::uint32_t>(
      std::llround(fraction * static_cast<double>(network.aliveCount())));
  std::vector<NodeId> arc;
  if (count == 0) return arc;
  const std::vector<NodeId> ring = ringOrder(network);
  const std::size_t start = rng.below(ring.size());
  arc.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i)
    arc.push_back(ring[(start + i) % ring.size()]);
  return arc;
}

// -- PartitionSchedule ---------------------------------------------------

PartitionSchedule PartitionSchedule::splitRing(const Network& network,
                                               std::uint32_t groups) {
  VS07_EXPECT(groups >= 2);
  VS07_EXPECT(groups <= network.aliveCount());
  PartitionSchedule schedule;
  schedule.groupCount_ = groups;
  schedule.groupOfNode_.assign(network.totalCreated(), 0);
  const std::vector<NodeId> ring = ringOrder(network);
  // Near-equal seq-contiguous segments: node at ring position i belongs
  // to group i*groups/n, so every group is one arc of the ring.
  const std::size_t n = ring.size();
  for (std::size_t i = 0; i < n; ++i)
    schedule.groupOfNode_[ring[i]] =
        static_cast<std::uint32_t>(i * groups / n);
  return schedule;
}

PartitionSchedule PartitionSchedule::splitRingArc(const Network& network,
                                                  double fraction, Rng& rng) {
  PartitionSchedule schedule;
  schedule.groupCount_ = 2;
  schedule.groupOfNode_.assign(network.totalCreated(), 0);
  for (const NodeId node : contiguousRingArc(network, fraction, rng))
    schedule.groupOfNode_[node] = 1;
  return schedule;
}

void PartitionSchedule::addWindow(std::uint64_t startTick,
                                  std::uint64_t endTick) {
  VS07_EXPECT(startTick < endTick);
  VS07_EXPECT(windows_.empty() || windows_.back().endTick <= startTick);
  windows_.push_back({startTick, endTick});
}

bool PartitionSchedule::active(std::uint64_t tick) const noexcept {
  for (const Window& w : windows_)
    if (tick >= w.startTick && tick < w.endTick) return true;
  return false;
}

std::uint32_t PartitionSchedule::groupOf(NodeId node) const noexcept {
  if (node < groupOfNode_.size()) return groupOfNode_[node];
  // Churn joiners born after construction: deterministic hash placement.
  return static_cast<std::uint32_t>(mix64(node) % groupCount_);
}

std::vector<NodeId> PartitionSchedule::members(std::uint32_t group) const {
  std::vector<NodeId> ids;
  for (NodeId node = 0; node < groupOfNode_.size(); ++node)
    if (groupOfNode_[node] == group) ids.push_back(node);
  return ids;
}

// -- NetworkModel --------------------------------------------------------

NetworkModel::NetworkModel(std::uint64_t seed) : rng_(seed) {}

NetworkModel::NetworkModel(const NetworkConditions& conditions,
                           const Network& network,
                           std::uint32_t ticksPerCycle, std::uint64_t seed)
    : conditions_(conditions),
      rng_(seed),
      activeFromTick_(conditions.startCycle * ticksPerCycle) {
  VS07_EXPECT(ticksPerCycle >= 1);
  if (conditions.lossRate > 0.0)
    addLink(std::make_unique<BernoulliLossLink>(conditions.lossRate));
  if (conditions.burstLoss)
    addLink(std::make_unique<GilbertElliottLink>(conditions.burst));
  if (conditions.duplicateRate > 0.0)
    addLink(std::make_unique<DuplicateLink>(conditions.duplicateRate));
  if (conditions.reorderRate > 0.0)
    addLink(std::make_unique<ReorderLink>(conditions.reorderRate,
                                          conditions.reorderMaxTicks));
  clusters_ = conditions.clusterLatency;
  bandwidth_ = conditions.bandwidth;
  using Kind = NetworkConditions::PartitionPlan::Kind;
  if (conditions.partition.kind != Kind::kNone) {
    PartitionSchedule schedule =
        conditions.partition.kind == Kind::kRingArc
            ? PartitionSchedule::splitRingArc(
                  network, conditions.partition.arcFraction, rng_)
            : PartitionSchedule::splitRing(network,
                                           conditions.partition.groups);
    for (const auto& [startCycle, endCycle] :
         conditions.partition.windowsCycles)
      schedule.addWindow(startCycle * ticksPerCycle,
                         endCycle * ticksPerCycle);
    setPartitions(std::move(schedule));
  }
  reserveNodes(network.totalCreated());
}

void NetworkModel::addLink(std::unique_ptr<LinkModel> link) {
  VS07_EXPECT(link != nullptr);
  chain_.push_back(std::move(link));
}

void NetworkModel::setPartitions(PartitionSchedule schedule) {
  partitions_ = std::move(schedule);
  hasPartitions_ = true;
}

void NetworkModel::reserveNodes(std::uint32_t totalNodes) {
  if (bandwidth_.messagesPerTick == 0) return;
  if (nextEgressSlot_.size() < totalNodes) nextEgressSlot_.resize(totalNodes, 0);
}

LinkFate NetworkModel::resolve(NodeId src, NodeId dst, std::uint64_t tick) {
  LinkFate fate;
  if (hasPartitions_ && partitions_.blocks(src, dst, tick)) {
    ++droppedByPartition_;
    fate.copies = 0;
    return fate;
  }
  if (tick < activeFromTick_) return fate;  // links clean before startCycle
  for (const auto& link : chain_) link->apply(src, dst, tick, fate, rng_);
  if (fate.copies == 0) {
    ++droppedByLoss_;
  } else {
    if (fate.copies > 1) duplicated_ += fate.copies - 1;
    if (fate.extraDelayTicks > 0) ++reordered_;
  }
  return fate;
}

std::uint64_t NetworkModel::latencyTicks(NodeId src, NodeId dst,
                                         const LatencyModel& fallback,
                                         Rng& rng) {
  if (clusters_.clusters == 0) return fallback.draw(rng);
  return clusterOf(src) == clusterOf(dst) ? clusters_.intra.draw(rng)
                                          : clusters_.inter.draw(rng);
}

std::uint64_t NetworkModel::egressDelay(NodeId src, std::uint64_t tick) {
  const std::uint32_t budget = bandwidth_.messagesPerTick;
  if (budget == 0 || tick < activeFromTick_) return 0;
  if (src >= nextEgressSlot_.size()) nextEgressSlot_.resize(src + 1, 0);
  // Absolute slot arithmetic: tick t offers `budget` departure slots
  // [t*budget, (t+1)*budget). FIFO: the message departs at the first
  // slot not consumed by earlier traffic.
  std::uint64_t& next = nextEgressSlot_[src];
  const std::uint64_t slot = std::max(next, tick * budget);
  next = slot + 1;
  const std::uint64_t delay = slot / budget - tick;
  if (delay > 0) {
    ++queuedSends_;
    queuedDelayTotal_ += delay;
    maxQueueDelay_ = std::max(maxQueueDelay_, delay);
  }
  return delay;
}

std::uint32_t NetworkModel::clusterOf(NodeId node) const noexcept {
  if (clusters_.clusters == 0) return 0;
  return static_cast<std::uint32_t>(mix64(node) % clusters_.clusters);
}

}  // namespace vs07::sim
