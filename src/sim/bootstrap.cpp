#include "sim/bootstrap.hpp"

#include "common/expect.hpp"

namespace vs07::sim {

void bootstrapStar(const Network& network, JoinHandler& join, NodeId hub) {
  VS07_EXPECT(network.isAlive(hub));
  for (const NodeId node : network.aliveIds())
    if (node != hub) join.onJoin(node, hub);
}

void bootstrapRandom(const Network& network, JoinHandler& join, Rng& rng) {
  VS07_EXPECT(network.aliveCount() > 1);
  for (const NodeId node : network.aliveIds()) {
    NodeId contact = node;
    while (contact == node) contact = network.randomAlive(rng);
    join.onJoin(node, contact);
  }
}

}  // namespace vs07::sim
