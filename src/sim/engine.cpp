#include "sim/engine.hpp"

#include <utility>

namespace vs07::sim {

Engine::Engine(Network& network, std::uint64_t seed, TimingConfig timing)
    : network_(network),
      timing_(timing),
      rng_(seed),
      phaseRng_(mix64(seed ^ 0x70686173ULL)) {  // "phas"
  VS07_EXPECT(timing_.ticksPerCycle >= 1);
  // Replays existing ids through assignPhase and keeps following spawns,
  // so every node (initial population and churn joiners alike) owns a
  // timer phase before its first cycle.
  network_.addObserver(phases_);
}

Engine::~Engine() { network_.removeObserver(phases_); }

void Engine::addProtocol(CycleProtocol& protocol) {
  protocols_.push_back(&protocol);
}

void Engine::addControl(Control& control) { controls_.push_back(&control); }

void Engine::run(std::uint64_t cycles) {
  for (std::uint64_t i = 0; i < cycles; ++i) runOneCycle();
}

void Engine::runOneCycle() {
  const std::uint64_t start = nextCycleStart_;
  const std::uint32_t span = timing_.ticksPerCycle;
  if (timing_.mode == TimingMode::kCycleSync) {
    // One global timer: the entire synchronous round is a single event at
    // the cycle's first tick (cycle-sync *means* all timers coincide).
    queue_.schedule(start, kPriorityTimer, [this] { sweepCycleSync(); });
  } else {
    // Independent periodic timers: each alive node fires once, at its own
    // phase offset. Nodes joining mid-cycle (via a control) start next
    // cycle; nodes killed mid-cycle are skipped by stepNode's alive check.
    // Nodes are bucketed by phase and each occupied tick scheduled as one
    // event — same execution order as one event per node (buckets keep
    // aliveIds order, exactly the seq tiebreak's order), at ticksPerCycle
    // events per cycle instead of population-many.
    buckets_.resize(span);
    for (auto& bucket : buckets_) bucket.clear();
    for (const NodeId node : network_.aliveIds())
      buckets_[phase_[node]].push_back(node);
    for (std::uint32_t offset = 0; offset < span; ++offset) {
      if (buckets_[offset].empty()) continue;
      queue_.schedule(start + offset, kPriorityTimer, [this, offset] {
        for (const NodeId node : buckets_[offset]) stepNode(node);
      });
    }
  }
  // Controls close the cycle on its last tick, after every timer (same
  // tick, higher priority class) — churn and probes still see cycle
  // boundaries regardless of the timing model.
  queue_.schedule(start + span - 1, kPriorityControl, [this] { finishCycle(); });
  for (std::uint64_t t = start; t < start + span; ++t) {
    tick_ = t;
    queue_.advanceTo(t);
  }
  nextCycleStart_ = start + span;
}

void Engine::sweepCycleSync() {
  order_ = network_.aliveIds();
  rng_.shuffle(order_);
  for (const NodeId node : order_) stepNode(node);
}

void Engine::stepNode(NodeId node) {
  if (!network_.isAlive(node)) return;
  const std::uint32_t steps =
      boost_ ? std::max<std::uint32_t>(1, boost_(node, cycle_)) : 1;
  for (std::uint32_t s = 0; s < steps; ++s)
    for (auto* protocol : protocols_) protocol->step(node);
}

void Engine::finishCycle() {
  ++cycle_;
  for (auto* control : controls_) control->execute(cycle_);
}

void Engine::scheduleDelivery(std::uint64_t delayTicks,
                              EventQueue::Action action) {
  ++pendingDeliveries_;
  queue_.schedule(tick_ + delayTicks, kPriorityDelivery,
                  [this, action = std::move(action)] {
                    --pendingDeliveries_;
                    action();
                  });
}

void Engine::scheduleMessageDelivery(std::uint64_t delayTicks, NodeId to,
                                     net::Message&& msg,
                                     net::DeliverySink& sink) {
  ++pendingDeliveries_;
  const net::MessagePool::Slot slot = pool_.checkIn(to, msg);
  if (slot >= slotSink_.size()) slotSink_.resize(slot + 1, nullptr);
  slotSink_[slot] = &sink;
  // Two-word capture: stays inside the std::function small buffer, so
  // queueing an in-flight message allocates nothing in steady state.
  queue_.schedule(tick_ + delayTicks, kPriorityDelivery,
                  [this, slot] { deliverSlot(slot); });
}

void Engine::deliverSlot(std::uint32_t slot) {
  --pendingDeliveries_;
  slotSink_[slot]->deliver(pool_.destination(slot), std::move(pool_.at(slot)));
  pool_.release(slot);
}

void Engine::assignPhase(NodeId node) {
  if (node >= phase_.size()) phase_.resize(node + 1, 0);
  // Drawn for every node in every mode so switching modes never changes
  // the membership bookkeeping; only jittered timing reads the value.
  phase_[node] = static_cast<std::uint32_t>(
      phaseRng_.below(timing_.ticksPerCycle));
}

Engine::StepBoostFn joinerBoost(const Network& network, std::uint32_t factor,
                                std::uint32_t warmupCycles) {
  return [&network, factor, warmupCycles](NodeId node, std::uint64_t cycle) {
    return network.lifetime(node, cycle) < warmupCycles ? factor : 1u;
  };
}

}  // namespace vs07::sim
