#include "sim/engine.hpp"

namespace vs07::sim {

Engine::Engine(Network& network, std::uint64_t seed)
    : network_(network), rng_(seed) {}

void Engine::addProtocol(CycleProtocol& protocol) {
  protocols_.push_back(&protocol);
}

void Engine::addControl(Control& control) { controls_.push_back(&control); }

void Engine::run(std::uint64_t cycles) {
  for (std::uint64_t i = 0; i < cycles; ++i) runOneCycle();
}

void Engine::runOneCycle() {
  // Snapshot and shuffle the alive set: nodes joining mid-cycle (via a
  // control) start stepping next cycle; nodes killed mid-cycle are skipped
  // by the alive check.
  order_ = network_.aliveIds();
  rng_.shuffle(order_);
  for (const NodeId node : order_) {
    if (!network_.isAlive(node)) continue;
    const std::uint32_t steps =
        boost_ ? std::max<std::uint32_t>(1, boost_(node, cycle_)) : 1;
    for (std::uint32_t s = 0; s < steps; ++s)
      for (auto* protocol : protocols_) protocol->step(node);
  }
  ++cycle_;
  for (auto* control : controls_) control->execute(cycle_);
}

Engine::StepBoostFn joinerBoost(const Network& network, std::uint32_t factor,
                                std::uint32_t warmupCycles) {
  return [&network, factor, warmupCycles](NodeId node, std::uint64_t cycle) {
    return network.lifetime(node, cycle) < warmupCycles ? factor : 1u;
  };
}

}  // namespace vs07::sim
