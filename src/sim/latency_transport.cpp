#include "sim/latency_transport.hpp"

#include <utility>

#include "common/expect.hpp"

namespace vs07::sim {

LatencyTransport::LatencyTransport(Engine& engine, net::DeliverySink& sink,
                                   LatencyModel latency, std::uint64_t seed)
    : engine_(engine), sink_(sink), latency_(latency), rng_(seed) {}

LatencyTransport::LatencyTransport(Engine& engine, net::DeliverFn deliver,
                                   LatencyModel latency, std::uint64_t seed)
    : engine_(engine),
      sink_(std::move(deliver)),
      latency_(latency),
      rng_(seed) {}

void LatencyTransport::send(NodeId to, net::Message&& msg) {
  countSend();
  if (model_ == nullptr) {
    ++inFlight_;
    engine_.scheduleMessageDelivery(latency_.draw(rng_), to, std::move(msg),
                                    counting_);
    return;
  }
  const NodeId src = msg.from;
  const std::uint64_t now = engine_.tick();
  const LinkFate fate = model_->resolve(src, to, now);
  // The sender transmits before the link can lose the message (or the
  // partition swallow it), so every attempted send consumes one egress
  // slot — loss never retroactively frees sender-side bandwidth.
  // Duplication is the network's doing, so extra copies cost none.
  const std::uint64_t egress = model_->egressDelay(src, now);
  if (fate.copies == 0) return;  // dropped; caller recycles the payload
  const std::uint64_t delay =
      model_->latencyTicks(src, to, latency_, rng_) + fate.extraDelayTicks +
      egress;
  // Extra copies (duplication) are scheduled first so the moved-from
  // original goes last; copies share the delay and arrive as distinct
  // queue events (the receiver counts them as redundant deliveries).
  for (std::uint32_t c = 1; c < fate.copies; ++c) {
    net::Message copy = msg;
    ++inFlight_;
    engine_.scheduleMessageDelivery(delay, to, std::move(copy), counting_);
  }
  ++inFlight_;
  engine_.scheduleMessageDelivery(delay, to, std::move(msg), counting_);
}

}  // namespace vs07::sim
