#include "sim/latency_transport.hpp"

#include <utility>

#include "common/expect.hpp"

namespace vs07::sim {

LatencyTransport::LatencyTransport(Engine& engine, net::DeliverFn deliver,
                                   LatencyModel latency, std::uint64_t seed)
    : engine_(engine),
      deliver_(std::move(deliver)),
      latency_(latency),
      rng_(seed) {
  VS07_EXPECT(deliver_ != nullptr);
}

void LatencyTransport::send(NodeId to, net::Message msg) {
  countSend();
  ++inFlight_;
  const std::uint64_t delay = latency_.draw(rng_);
  engine_.scheduleDelivery(delay, [this, to, m = std::move(msg)] {
    --inFlight_;
    deliver_(to, m);
  });
}

}  // namespace vs07::sim
