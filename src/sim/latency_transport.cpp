#include "sim/latency_transport.hpp"

#include <utility>

#include "common/expect.hpp"

namespace vs07::sim {

LatencyTransport::LatencyTransport(Engine& engine, net::DeliverySink& sink,
                                   LatencyModel latency, std::uint64_t seed)
    : engine_(engine), sink_(sink), latency_(latency), rng_(seed) {}

LatencyTransport::LatencyTransport(Engine& engine, net::DeliverFn deliver,
                                   LatencyModel latency, std::uint64_t seed)
    : engine_(engine),
      sink_(std::move(deliver)),
      latency_(latency),
      rng_(seed) {}

void LatencyTransport::send(NodeId to, net::Message&& msg) {
  countSend();
  ++inFlight_;
  engine_.scheduleMessageDelivery(latency_.draw(rng_), to, std::move(msg),
                                  counting_);
}

}  // namespace vs07::sim
