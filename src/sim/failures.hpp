// Catastrophic failure injection (§7.2): kill a random fraction of the
// population at once. The paper deliberately stalls gossip afterwards —
// the overlay gets no chance to self-heal — so this is a plain mutation,
// not a Control.
//
// Invariant: every helper is deterministic in the caller's rng, and the
// §5.1 arc kill selects its victims through the same primitive
// (sim/network_model's contiguousRingArc) that PartitionSchedule uses to
// isolate an arc — kill and partition name the same nodes at the same
// rng state (pinned by tests/sim/partition_fold_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sim/network.hpp"

namespace vs07::sim {

/// Kills round(fraction * aliveCount) distinct random alive nodes.
/// Returns the ids killed (useful for assertions in tests).
std::vector<NodeId> killRandomFraction(Network& network, double fraction,
                                       Rng& rng);

/// Kills an explicit count of distinct random alive nodes.
std::vector<NodeId> killRandomCount(Network& network, std::uint32_t count,
                                    Rng& rng);

/// Adversarial variant for ring-based d-links: kills a *contiguous arc*
/// of the sequence-id ring (round(fraction * alive) nodes starting at a
/// random ring position). Random failures rarely hit adjacent ring
/// neighbours; an arc kill destroys a whole stretch of d-links at once —
/// the §5.1 partitioned-ring scenario made systematic, where only
/// r-links can bridge the gap.
std::vector<NodeId> killContiguousArc(Network& network, double fraction,
                                      Rng& rng);

}  // namespace vs07::sim
