// Pluggable timing models for the discrete-event simulation core.
//
// The paper's evaluation runs on a cycle-synchronous model (PeerSim
// cycles) but argues in §7 that "nodes have independent, non-synchronized
// timers" and that uniform delay does not change macroscopic behaviour.
// The engine makes that claim *testable* instead of assumed:
//
//   * CycleSync — one global timer; every cycle all alive nodes step in a
//     fresh random order and an exchange completes inside the cycle.
//     Reproduces the pre-event-core engine bit-for-bit (the determinism
//     regression suites pin this).
//   * JitteredPeriodic — each node owns an independent periodic gossip
//     timer, phase-shifted by a per-node random offset within the cycle,
//     which is what the paper actually assumes of deployed nodes.
//
// Orthogonally, a LatencyModel assigns every simulated message a delivery
// latency in ticks (fixed / uniform / exponential); the engine's shared
// EventQueue schedules the arrival, replacing per-transport ad-hoc heaps.
#pragma once

#include <cstdint>

#include "common/expect.hpp"
#include "common/rng.hpp"

namespace vs07::sim {

/// How node gossip timers are driven (see file comment).
enum class TimingMode : std::uint8_t {
  kCycleSync = 0,
  kJitteredPeriodic = 1,
};

/// Ticks per cycle used by the jittered presets: phases spread across 8
/// ticks, so "same cycle" no longer means "same instant".
inline constexpr std::uint32_t kDefaultTicksPerCycle = 8;

/// Per-message delivery latency in ticks. kNone means the transport
/// delivers synchronously (the paper's latency-free model).
struct LatencyModel {
  enum class Kind : std::uint8_t { kNone = 0, kFixed, kUniform, kExponential };

  Kind kind = Kind::kNone;
  /// kFixed: the latency. kUniform: inclusive bounds. kExponential: draws
  /// are clamped into [minTicks, maxTicks] (a tail cap keeps simulated
  /// time bounded).
  std::uint32_t minTicks = 1;
  std::uint32_t maxTicks = 1;
  /// Mean of the exponential distribution (kExponential only).
  double meanTicks = 1.0;

  static LatencyModel none() noexcept { return {}; }
  static LatencyModel fixed(std::uint32_t ticks) noexcept {
    return {Kind::kFixed, ticks, ticks, static_cast<double>(ticks)};
  }
  static LatencyModel uniform(std::uint32_t minTicks,
                              std::uint32_t maxTicks) {
    VS07_EXPECT(minTicks <= maxTicks);
    // Sum in double: uint32 bounds near the top of the range would wrap
    // if added before the division.
    return {Kind::kUniform, minTicks, maxTicks,
            (static_cast<double>(minTicks) + static_cast<double>(maxTicks)) /
                2.0};
  }
  static LatencyModel exponential(double meanTicks,
                                  std::uint32_t capTicks) {
    VS07_EXPECT(meanTicks > 0.0);
    VS07_EXPECT(capTicks >= 1);
    return {Kind::kExponential, 1, capTicks, meanTicks};
  }

  /// Draws one latency. Deterministic in the rng stream.
  std::uint64_t draw(Rng& rng) const;

  /// Smallest latency any draw can return — the conservative lookahead of
  /// the windowed parallel engine (ShardedEngine): a message sent at tick
  /// t arrives no earlier than t + minLatencyTicks(), so all events below
  /// min(next event time) + minLatencyTicks() are safe to execute without
  /// further synchronisation. kNone delivers synchronously (lookahead 0,
  /// per-tick windows); kExponential draws are clamped up to minTicks.
  std::uint32_t minLatencyTicks() const noexcept {
    return kind == Kind::kNone ? 0 : minTicks;
  }

  /// Stable lowercase name ("none" / "fixed" / "uniform" /
  /// "exponential") — the bench JSON metadata vocabulary.
  const char* name() const noexcept;
};

/// The full timing configuration of an Engine.
struct TimingConfig {
  TimingMode mode = TimingMode::kCycleSync;
  /// Ticks a cycle spans. CycleSync conventionally uses 1 (the whole
  /// cycle is one instant); jittered modes spread node timers across
  /// [0, ticksPerCycle) phases. Must be >= 1.
  std::uint32_t ticksPerCycle = 1;
  /// Delivery latency of simulated traffic, when the scenario routes its
  /// transports through the engine queue (LatencyTransport).
  LatencyModel latency{};

  // -- presets ----------------------------------------------------------

  /// The paper's evaluation model (and the engine default).
  static TimingConfig cycleSync() noexcept { return {}; }
  /// Independent phase-shifted periodic timers, immediate delivery.
  static TimingConfig jittered(
      std::uint32_t ticksPerCycle = kDefaultTicksPerCycle) noexcept {
    return {TimingMode::kJitteredPeriodic, ticksPerCycle, {}};
  }
  /// Jittered timers + per-message latency: the "realistic network"
  /// preset of the timing-sensitivity bench.
  static TimingConfig jitteredLatency(
      LatencyModel latency,
      std::uint32_t ticksPerCycle = kDefaultTicksPerCycle) noexcept {
    return {TimingMode::kJitteredPeriodic, ticksPerCycle, latency};
  }

  /// Stable lowercase mode name ("cyclesync" / "jittered") — the bench
  /// JSON metadata vocabulary.
  const char* modeName() const noexcept;
};

}  // namespace vs07::sim
