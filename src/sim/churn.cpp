#include "sim/churn.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace vs07::sim {

ChurnControl::ChurnControl(Network& network, double rate, std::uint64_t seed)
    : network_(network), rate_(rate), rng_(seed) {
  VS07_EXPECT(rate >= 0.0 && rate < 1.0);
}

void ChurnControl::addJoinHandler(JoinHandler& handler) {
  joinHandlers_.push_back(&handler);
}

void ChurnControl::execute(std::uint64_t cycle) {
  const auto alive = network_.aliveCount();
  const auto replacements = static_cast<std::uint32_t>(
      std::llround(rate_ * static_cast<double>(alive)));
  if (replacements == 0) return;

  // Remove first, then join: a joiner can never pick a node that dies in
  // the same cycle as its introducer.
  for (std::uint32_t i = 0; i < replacements; ++i) {
    network_.kill(network_.randomAlive(rng_));
    ++removed_;
  }
  for (std::uint32_t i = 0; i < replacements; ++i) {
    const NodeId joiner = network_.spawn(cycle);
    // A joiner introduced by itself would be isolated forever; redraw.
    NodeId introducer = joiner;
    while (introducer == joiner) introducer = network_.randomAlive(rng_);
    for (auto* handler : joinHandlers_) handler->onJoin(joiner, introducer);
    ++joined_;
  }
}

}  // namespace vs07::sim
