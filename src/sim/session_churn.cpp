#include "sim/session_churn.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace vs07::sim {

std::uint64_t SessionDistribution::sample(Rng& rng) const {
  VS07_EXPECT(alpha > 1.0);
  VS07_EXPECT(minCycles >= 1.0);
  // Inverse-CDF sampling of a Pareto, truncated at maxCycles.
  const double u = rng.uniform();
  const double raw = minCycles / std::pow(1.0 - u, 1.0 / alpha);
  const double bounded = std::min(raw, maxCycles);
  return static_cast<std::uint64_t>(std::llround(bounded));
}

SessionDistribution paretoForMeanLifetime(double meanCycles, double alpha) {
  VS07_EXPECT(alpha > 1.0);
  VS07_EXPECT(meanCycles > 1.0);
  SessionDistribution d;
  d.alpha = alpha;
  d.minCycles = std::max(1.0, meanCycles * (alpha - 1.0) / alpha);
  return d;
}

SessionChurnControl::SessionChurnControl(Network& network,
                                         SessionDistribution distribution,
                                         std::uint64_t seed)
    : network_(network), distribution_(distribution), rng_(seed) {}

void SessionChurnControl::addJoinHandler(JoinHandler& handler) {
  joinHandlers_.push_back(&handler);
}

void SessionChurnControl::admit(NodeId node, std::uint64_t now) {
  expiries_.push({now + distribution_.sample(rng_), node});
}

void SessionChurnControl::admitInitialPopulation(std::uint64_t now) {
  // Residual lifetimes: each pre-existing node is somewhere mid-session,
  // so it expires after a uniformly random fraction of a fresh session
  // length. (An approximation of the exact stationary residual — good
  // enough to avoid synchronised death waves; see header.)
  for (const NodeId node : network_.aliveIds()) {
    const auto full = distribution_.sample(rng_);
    const auto residual = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(full) * rng_.uniform()));
    expiries_.push({now + std::max<std::uint64_t>(1, residual), node});
  }
}

void SessionChurnControl::execute(std::uint64_t cycle) {
  if (!initialized_) {
    admitInitialPopulation(cycle);
    initialized_ = true;
  }
  lastReplacements_ = 0;
  while (!expiries_.empty() && expiries_.top().atCycle <= cycle) {
    const NodeId victim = expiries_.top().node;
    expiries_.pop();
    // The node may already be dead through external failure injection.
    if (!network_.isAlive(victim)) continue;
    network_.kill(victim);
    ++removed_;
    ++lastReplacements_;

    const NodeId joiner = network_.spawn(cycle);
    admit(joiner, cycle);
    NodeId introducer = joiner;
    while (introducer == joiner) introducer = network_.randomAlive(rng_);
    for (auto* handler : joinHandlers_) handler->onJoin(joiner, introducer);
  }
}

}  // namespace vs07::sim
