// Simulated node population.
//
// Network owns membership: which node ids exist, which are alive, when
// each joined, and each node's ring SequenceId. Node ids are never reused —
// a churned-out node's id stays dead forever, so stale view entries keep
// pointing at a dead node exactly as in the paper's worst-case churn model
// ("removed nodes never come back, so dead links never become valid
// again"). New joiners always get a fresh id.
//
// Ordering invariant: aliveIds() is maintained by append-on-spawn and
// swap-with-last-on-kill — its order is unspecified but a pure function
// of the spawn/kill history, so identically seeded runs iterate the
// alive set identically (the determinism suites depend on this).
// Observers are notified in registration order, synchronously inside
// spawn()/kill().
#pragma once

#include <cstdint>
#include <vector>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "net/node_id.hpp"

namespace vs07::sim {

/// Derives the Network seed from an experiment's root seed ("nodes"
/// salt). Both analysis::Scenario and the real-socket runtime build their
/// population from this, so every process of a distributed run — and the
/// simulation it is cross-validated against — draws identical node ids
/// and ring sequence ids from the same root seed.
constexpr std::uint64_t populationSeed(std::uint64_t rootSeed) noexcept {
  return mix64(rootSeed ^ 0x6E6F646573ULL);  // "nodes"
}

/// Notified on membership changes; protocols register to size their
/// per-node state and to clear state of dead nodes.
class MembershipObserver {
 public:
  virtual ~MembershipObserver() = default;
  /// Registration-time capacity hint: the id space already holds `count`
  /// nodes and the onSpawn replay for them follows immediately. Observers
  /// with per-node state should reserve exactly `count` slots here —
  /// growing one node at a time during the replay leaves the geometric
  /// resize overshoot (up to 2x) live in every per-node vector, which at
  /// millions of nodes wastes hundreds of bytes per node. Default: no-op.
  virtual void onReserve(NodeId count) { (void)count; }
  /// A node id came into existence (initial population or churn join).
  virtual void onSpawn(NodeId node) = 0;
  /// A node died (catastrophic failure or churn removal).
  virtual void onKill(NodeId node) = 0;
};

/// The simulated population. Single-threaded by design (the cycle model
/// is sequential); not thread-safe.
class Network {
 public:
  /// Creates `initialSize` alive nodes with random sequence ids drawn
  /// from `seed`. Join cycle of the initial population is 0.
  Network(std::uint32_t initialSize, std::uint64_t seed);

  // -- membership queries ---------------------------------------------

  /// Total ids ever created (dense id space is [0, totalCreated())).
  std::uint32_t totalCreated() const noexcept {
    return static_cast<std::uint32_t>(alive_.size());
  }
  std::uint32_t aliveCount() const noexcept {
    return static_cast<std::uint32_t>(aliveIds_.size());
  }
  bool isAlive(NodeId node) const {
    VS07_EXPECT(node < alive_.size());
    return alive_[node] != 0;
  }
  /// Ids of currently alive nodes, unspecified order. Invalidated by
  /// spawn/kill.
  const std::vector<NodeId>& aliveIds() const noexcept { return aliveIds_; }

  /// Uniformly random alive node. Requires a non-empty population.
  NodeId randomAlive(Rng& rng) const;

  // -- node attributes --------------------------------------------------

  /// Ring position (VICINITY profile) of a node.
  SequenceId seqId(NodeId node) const {
    VS07_EXPECT(node < seqIds_.size());
    return seqIds_[node];
  }
  /// Overrides a node's sequence id (domain-ring extension). Must be done
  /// before protocols copy the profile into views.
  void setSeqId(NodeId node, SequenceId id);

  /// Cycle at which the node joined.
  std::uint64_t joinCycle(NodeId node) const {
    VS07_EXPECT(node < joinCycle_.size());
    return joinCycle_[node];
  }
  /// Lifetime in cycles at time `nowCycle` (paper Figs. 12-13).
  std::uint64_t lifetime(NodeId node, std::uint64_t nowCycle) const {
    const auto born = joinCycle(node);
    return nowCycle >= born ? nowCycle - born : 0;
  }

  /// Number of nodes from the *initial* population still alive. The churn
  /// warm-up of §7.3 runs until this reaches zero ("until every node had
  /// been removed ... at least once").
  std::uint32_t initialSurvivors() const noexcept { return initialSurvivors_; }

  // -- membership mutation ----------------------------------------------

  /// Creates a fresh alive node with a random sequence id; returns its id.
  NodeId spawn(std::uint64_t atCycle);

  /// Marks a node dead. Idempotent kills are a bug: requires alive.
  void kill(NodeId node);

  // -- observers ----------------------------------------------------------

  /// Registers an observer; it is immediately told about existing nodes
  /// via onSpawn so late registration is safe. Non-owning.
  void addObserver(MembershipObserver& observer);

  /// Unregisters an observer. No-op if it was never registered, so
  /// observers whose Network may be destroyed first can call this
  /// unconditionally from their destructor.
  void removeObserver(MembershipObserver& observer);

 private:
  Rng rng_;
  std::vector<std::uint8_t> alive_;
  std::vector<SequenceId> seqIds_;
  std::vector<std::uint64_t> joinCycle_;
  std::vector<NodeId> aliveIds_;
  /// Position of each alive node inside aliveIds_ (kNoNode when dead);
  /// enables O(1) removal by swap-with-last.
  std::vector<std::uint32_t> alivePos_;
  std::uint32_t initialSize_;
  std::uint32_t initialSurvivors_;
  std::vector<MembershipObserver*> observers_;
};

}  // namespace vs07::sim
