#include "sim/router.hpp"

#include "common/expect.hpp"

namespace vs07::sim {

std::size_t MessageRouter::slot(net::MessageKind kind, std::uint8_t channel) {
  const auto k = static_cast<std::size_t>(kind);
  VS07_EXPECT(k < kKinds);
  VS07_EXPECT(channel <= net::kMaxChannel);
  return channel * kKinds + k;
}

void MessageRouter::route(net::MessageKind kind, Handler handler,
                          std::uint8_t channel) {
  handlers_[slot(kind, channel)] = std::move(handler);
}

void MessageRouter::deliver(NodeId to, net::Message&& msg) {
  if (!network_->isAlive(to)) {
    ++droppedDead_;
    return;
  }
  const auto& handler = handlers_[slot(msg.kind, msg.channel)];
  if (handler == nullptr) {
    ++droppedUnroutable_;
    return;
  }
  handler(to, msg);
}

}  // namespace vs07::sim
