// Session-length churn — a more realistic alternative to the paper's
// per-cycle replacement model.
//
// Invariants: deterministic in the control's seed — session draws and
// introducer picks share one private Rng, and the expiry heap pops in a
// fixed order for a fixed insertion sequence. Each expiry is immediately
// followed by its replacement join, so the population size is constant
// at every cycle boundary.
//
// The paper's artificial model (ChurnControl) removes a uniform random
// fraction each cycle: node lifetimes are geometric (memoryless). Real
// P2P session traces — including the Saroiu et al. Gnutella measurements
// the paper calibrates against — are heavy-tailed: most sessions are
// short, a few last very long. SessionChurnControl assigns every joiner a
// session length drawn from a bounded Pareto distribution and kills it on
// expiry, replacing it with a fresh joiner; the population size stays
// constant, as in §7.3.
//
// With the shape parameter alpha and minimum session length Lmin, the
// (unbounded) mean is Lmin * alpha / (alpha - 1); the helper
// paretoForMeanLifetime picks Lmin to match a target mean so both churn
// models can be compared at equal average turnover.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"

namespace vs07::sim {

/// Bounded Pareto session-length distribution (in cycles).
struct SessionDistribution {
  double alpha = 1.5;      ///< tail index; smaller = heavier tail
  double minCycles = 10;   ///< shortest possible session
  double maxCycles = 1e6;  ///< truncation bound

  /// Draws one session length.
  std::uint64_t sample(Rng& rng) const;

  /// Mean of the *unbounded* Pareto (requires alpha > 1); the truncated
  /// mean is slightly smaller.
  double mean() const noexcept {
    return minCycles * alpha / (alpha - 1.0);
  }
};

/// Distribution whose mean session length equals `meanCycles`.
SessionDistribution paretoForMeanLifetime(double meanCycles,
                                          double alpha = 1.5);

/// Churn driven by per-node session expiry. Register with
/// Engine::addControl *after* the initial population exists.
class SessionChurnControl final : public Control {
 public:
  /// The initial population is admitted lazily on the first execute():
  /// each existing node gets a *residual* lifetime — a fresh session
  /// length scaled by a uniform position within it — approximating the
  /// stationary age distribution. Without this, every initial node's
  /// session would start simultaneously and the hard Pareto minimum
  /// would synchronise recurring death waves (a perpetual sequence of
  /// catastrophic failures rather than smooth churn).
  SessionChurnControl(Network& network, SessionDistribution distribution,
                      std::uint64_t seed);

  /// Protocols that must learn about joiners register here.
  void addJoinHandler(JoinHandler& handler);

  void execute(std::uint64_t cycle) override;

  std::uint64_t totalRemoved() const noexcept { return removed_; }

  /// Replacements during the most recent cycle (turnover-rate probe).
  std::uint32_t lastCycleReplacements() const noexcept {
    return lastReplacements_;
  }

 private:
  void admit(NodeId node, std::uint64_t now);
  void admitInitialPopulation(std::uint64_t now);

  Network& network_;
  SessionDistribution distribution_;
  Rng rng_;
  bool initialized_ = false;
  std::vector<JoinHandler*> joinHandlers_;
  struct Expiry {
    std::uint64_t atCycle;
    NodeId node;
    bool operator>(const Expiry& other) const noexcept {
      return atCycle > other.atCycle;
    }
  };
  std::priority_queue<Expiry, std::vector<Expiry>, std::greater<>> expiries_;
  std::uint64_t removed_ = 0;
  std::uint32_t lastReplacements_ = 0;
};

}  // namespace vs07::sim
