// Artificial churn model of §7.3: each cycle a fixed fraction of randomly
// selected nodes is removed and the same number of fresh nodes joins.
// Removed nodes never return; joiners bootstrap from one random alive
// introducer (the worst case the paper evaluates).
//
// Invariants: the control is deterministic in its seed (all victim and
// introducer picks flow through one private Rng); within a cycle every
// kill precedes every join, and join handlers run in registration order —
// so protocols observe one canonical membership sequence, pinned by the
// churn determinism suites.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"

namespace vs07::sim {

/// Per-cycle churn control. Register with Engine::addControl.
class ChurnControl final : public Control {
 public:
  /// `rate` is the fraction of the population replaced per cycle
  /// (0.002 reproduces the paper's 0.2 %). The number of replacements is
  /// round(rate * aliveCount), evaluated each cycle.
  ChurnControl(Network& network, double rate, std::uint64_t seed);

  /// Protocols that must learn about joiners (e.g. Cyclon) register here.
  void addJoinHandler(JoinHandler& handler);

  void execute(std::uint64_t cycle) override;

  std::uint64_t totalRemoved() const noexcept { return removed_; }
  std::uint64_t totalJoined() const noexcept { return joined_; }

 private:
  Network& network_;
  double rate_;
  Rng rng_;
  std::vector<JoinHandler*> joinHandlers_;
  std::uint64_t removed_ = 0;
  std::uint64_t joined_ = 0;
};

}  // namespace vs07::sim
