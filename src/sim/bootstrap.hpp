// Initial-topology helpers. The paper bootstraps every experiment from a
// star: all nodes know one contact node, everything else empty, then lets
// CYCLON/VICINITY self-organise for 100 cycles.
//
// Invariant: bootstrapping sends no messages and mutates nothing but the
// join handlers' views, walking the alive set in its stored order. The
// star variant consumes no randomness at all; the random variant draws
// only from the caller's rng — either way, two identically seeded
// scenarios enter warm-up with byte-identical protocol state.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"

namespace vs07::sim {

/// Introduces every node except `hub` to `hub` (the paper's star topology).
/// `join` is the protocol join hook (same one churn uses).
void bootstrapStar(const Network& network, JoinHandler& join, NodeId hub = 0);

/// Introduces each node to one uniformly random other node (connected
/// with high probability; used by tests to skip star warm-up effects).
void bootstrapRandom(const Network& network, JoinHandler& join, Rng& rng);

}  // namespace vs07::sim
