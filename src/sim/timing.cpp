#include "sim/timing.hpp"

#include <algorithm>
#include <cmath>

namespace vs07::sim {

std::uint64_t LatencyModel::draw(Rng& rng) const {
  switch (kind) {
    case Kind::kNone:
      return 0;
    case Kind::kFixed:
      return minTicks;
    case Kind::kUniform:
      return minTicks == maxTicks
                 ? minTicks
                 : minTicks + rng.below(maxTicks - minTicks + 1);
    case Kind::kExponential: {
      // Inverse-CDF draw; uniform() < 1 keeps the log argument positive.
      const double raw = -meanTicks * std::log(1.0 - rng.uniform());
      const auto ticks = static_cast<std::uint64_t>(std::llround(raw));
      return std::clamp<std::uint64_t>(ticks, minTicks, maxTicks);
    }
  }
  return 0;  // unreachable
}

const char* LatencyModel::name() const noexcept {
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kFixed:
      return "fixed";
    case Kind::kUniform:
      return "uniform";
    case Kind::kExponential:
      return "exponential";
  }
  return "none";  // unreachable
}

const char* TimingConfig::modeName() const noexcept {
  return mode == TimingMode::kCycleSync ? "cyclesync" : "jittered";
}

}  // namespace vs07::sim
