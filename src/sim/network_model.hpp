// NetworkModel — composable per-link network conditions, resolved at
// delivery-scheduling time.
//
// The paper's evaluation models the network as a uniform latency-free
// cloud: nodes fail whole, links never do. This layer adds the link-level
// adversity the robustness claims should be stress-tested against —
// loss (independent and bursty), duplication, reordering, partitions
// that heal, heterogeneous cluster latency, and bandwidth-induced
// queueing — while preserving the simulator's core invariants:
//
//   * Determinism: every random choice flows through the model's own
//     Rng stream (seeded from the scenario seed). A given scenario
//     replays bit-for-bit at the same seed regardless of thread count,
//     because one model serves exactly one single-threaded simulation
//     and parallel experiment runners derive one seed per cell.
//   * Zero allocations on the clean-link fast path: resolving a message
//     that is neither lost, duplicated, reordered nor queued performs
//     only RNG draws, array lookups, and counter updates. Only the
//     adversity paths (duplication's payload copy, Gilbert-Elliott's
//     lazily grown per-link state) may allocate.
//   * Scheduling-time resolution: conditions are applied once, inside
//     sim::LatencyTransport::send, by translating them into the delivery
//     delay (or the absence) of an event on the engine's shared queue —
//     no per-tick sweeps over links, no per-link queues to drain.
//
// The pieces compose: a chain of LinkModel decorators decides the fate
// of each message (copies, extra delay), a PartitionSchedule vetoes
// cross-group traffic during its windows, ClusterLatency replaces the
// global latency draw with intra/inter-cluster distributions, and an
// egress BandwidthCap turns sender overload into FIFO queueing delay.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "net/node_id.hpp"
#include "sim/network.hpp"
#include "sim/timing.hpp"

namespace vs07::sim {

/// The fate of one message crossing a link: how many copies arrive
/// (0 = lost) and how many ticks of extra delay they carry on top of
/// the base latency draw.
struct LinkFate {
  std::uint32_t copies = 1;
  std::uint64_t extraDelayTicks = 0;
};

/// One per-link condition, queried per (src, dst, tick) at the moment a
/// message is scheduled. Implementations must be deterministic in the
/// provided rng stream and must not allocate on their no-op path.
class LinkModel {
 public:
  virtual ~LinkModel() = default;

  /// Folds this condition into `fate` (already shaped by earlier links
  /// in the chain). Called once per send, in chain order.
  virtual void apply(NodeId src, NodeId dst, std::uint64_t tick,
                     LinkFate& fate, Rng& rng) = 0;

  /// Stable lowercase name for bench JSON metadata.
  virtual const char* name() const noexcept = 0;
};

/// Independent per-message Bernoulli loss: each link crossing fails with
/// probability `lossRate`.
class BernoulliLossLink final : public LinkModel {
 public:
  explicit BernoulliLossLink(double lossRate) : lossRate_(lossRate) {
    VS07_EXPECT(lossRate >= 0.0 && lossRate <= 1.0);
  }
  void apply(NodeId, NodeId, std::uint64_t, LinkFate& fate,
             Rng& rng) override {
    if (fate.copies != 0 && rng.chance(lossRate_)) fate.copies = 0;
  }
  const char* name() const noexcept override { return "bernoulli_loss"; }

  double lossRate() const noexcept { return lossRate_; }

 private:
  double lossRate_;
};

/// Bursty loss: the classic Gilbert-Elliott two-state Markov chain, one
/// chain per directed link. Each crossing first advances the link's
/// state (Good ↔ Bad with the transition probabilities), then drops
/// with that state's loss rate — so losses cluster in bursts instead of
/// sprinkling independently. Per-link state is created lazily on first
/// crossing (an allocation, hence burst loss is not part of the
/// clean-link zero-alloc contract); the event-driven advance means idle
/// links cost nothing.
class GilbertElliottLink final : public LinkModel {
 public:
  struct Params {
    double pGoodToBad = 0.05;  ///< per-crossing chance Good → Bad
    double pBadToGood = 0.25;  ///< per-crossing chance Bad → Good
    double lossGood = 0.0;     ///< loss rate while Good
    double lossBad = 0.75;     ///< loss rate while Bad
  };

  explicit GilbertElliottLink(Params params) : params_(params) {}
  void apply(NodeId src, NodeId dst, std::uint64_t tick, LinkFate& fate,
             Rng& rng) override;
  const char* name() const noexcept override { return "gilbert_elliott"; }

  const Params& params() const noexcept { return params_; }
  /// Directed links currently tracked (diagnostics).
  std::size_t trackedLinks() const noexcept { return bad_.size(); }

 private:
  Params params_;
  /// Directed link (src<<32|dst) → in-Bad-state flag.
  std::unordered_map<std::uint64_t, std::uint8_t> bad_;
};

/// Message duplication: with probability `duplicateRate` a crossing
/// delivers two copies instead of one (both at the same delay; the
/// receiver counts the second as a redundant delivery).
class DuplicateLink final : public LinkModel {
 public:
  explicit DuplicateLink(double duplicateRate) : rate_(duplicateRate) {
    VS07_EXPECT(duplicateRate >= 0.0 && duplicateRate <= 1.0);
  }
  void apply(NodeId, NodeId, std::uint64_t, LinkFate& fate,
             Rng& rng) override {
    if (fate.copies != 0 && rng.chance(rate_)) ++fate.copies;
  }
  const char* name() const noexcept override { return "duplicate"; }

 private:
  double rate_;
};

/// Reordering: with probability `reorderRate` a crossing picks up
/// 1..maxExtraTicks ticks of extra delay, letting later sends overtake
/// it (the event queue's (dueTick, seq) order does the actual
/// reordering).
class ReorderLink final : public LinkModel {
 public:
  ReorderLink(double reorderRate, std::uint32_t maxExtraTicks)
      : rate_(reorderRate), maxExtra_(maxExtraTicks) {
    VS07_EXPECT(reorderRate >= 0.0 && reorderRate <= 1.0);
    VS07_EXPECT(maxExtraTicks >= 1);
  }
  void apply(NodeId, NodeId, std::uint64_t, LinkFate& fate,
             Rng& rng) override {
    if (fate.copies != 0 && rng.chance(rate_))
      fate.extraDelayTicks += 1 + rng.below(maxExtra_);
  }
  const char* name() const noexcept override { return "reorder"; }

 private:
  double rate_;
  std::uint32_t maxExtra_;
};

// -- partitions ----------------------------------------------------------

/// Alive nodes in converged-ring order: ascending SequenceId, node id as
/// tiebreak. The order every ring-structured failure/partition helper
/// shares (and the order sim/failures' §5.1 arc kill has always used).
std::vector<NodeId> ringOrder(const Network& network);

/// The §5.1 contiguous arc: round(fraction * alive) nodes starting at a
/// uniformly random ring position. Consumes exactly one rng draw — the
/// same draw killContiguousArc has always made, so arc selection is
/// bit-compatible between the kill and partition APIs (pinned by
/// tests/sim/partition_fold_test.cpp).
std::vector<NodeId> contiguousRingArc(const Network& network, double fraction,
                                      Rng& rng);

/// A time-table of network partitions: the population is split into
/// groups, and during each [startTick, endTick) window all cross-group
/// traffic is dropped; outside the windows the partition is healed and
/// traffic flows freely. Group membership is fixed at construction;
/// nodes spawned later (churn joiners) are assigned deterministically by
/// hashing their id.
class PartitionSchedule {
 public:
  /// One blackout window, [startTick, endTick) in engine ticks. Under
  /// CycleSync with ticksPerCycle 1, tick t is processed by cycle t+1,
  /// so a window of [w, w+d) blacks out cycles w+1 .. w+d.
  struct Window {
    std::uint64_t startTick = 0;
    std::uint64_t endTick = 0;
  };

  PartitionSchedule() = default;

  /// Splits the current alive population into `groups` seq-contiguous
  /// ring segments of (near-)equal size — the generalized §5.1
  /// partitioned ring: every group is an arc, so each side keeps a
  /// connected chain of d-links.
  static PartitionSchedule splitRing(const Network& network,
                                     std::uint32_t groups);

  /// Two groups: the §5.1 contiguous arc (group 1, selected exactly as
  /// killContiguousArc selects its victims from `rng`) versus everyone
  /// else (group 0).
  static PartitionSchedule splitRingArc(const Network& network,
                                        double fraction, Rng& rng);

  /// Adds a blackout window. Windows may not overlap and must be added
  /// in ascending order.
  void addWindow(std::uint64_t startTick, std::uint64_t endTick);

  /// True while some window covers `tick`.
  bool active(std::uint64_t tick) const noexcept;

  /// The node's group. Ids beyond the construction-time population
  /// (churn joiners) hash into a group deterministically.
  std::uint32_t groupOf(NodeId node) const noexcept;

  /// Does the schedule veto a (src → dst) crossing at `tick`?
  bool blocks(NodeId src, NodeId dst, std::uint64_t tick) const noexcept {
    return active(tick) && groupOf(src) != groupOf(dst);
  }

  std::uint32_t groupCount() const noexcept { return groupCount_; }
  const std::vector<Window>& windows() const noexcept { return windows_; }

  /// Members of `group` among the construction-time population, in the
  /// group-assignment order (ring order for the split* factories).
  std::vector<NodeId> members(std::uint32_t group) const;

 private:
  std::vector<std::uint32_t> groupOfNode_;  // index = NodeId
  std::uint32_t groupCount_ = 1;
  std::vector<Window> windows_;
};

// -- latency heterogeneity and bandwidth ---------------------------------

/// Cluster-based heterogeneous latency: nodes hash into `clusters`
/// groups; same-cluster traffic draws from `intra`, cross-cluster
/// traffic from `inter`. Replaces the single global LatencyModel draw
/// when configured (clusters >= 1).
struct ClusterLatency {
  std::uint32_t clusters = 0;  ///< 0 = disabled (use the global model)
  LatencyModel intra = LatencyModel::fixed(1);
  LatencyModel inter = LatencyModel::uniform(2, 8);
};

/// Per-node egress bandwidth cap: a node sends at most `messagesPerTick`
/// messages per tick; excess sends queue FIFO behind the sender's
/// earlier traffic, surfacing as added delivery delay. 0 = unlimited.
struct BandwidthCap {
  std::uint32_t messagesPerTick = 0;
};

// -- the composed model --------------------------------------------------

/// Declarative, value-type description of a NetworkModel — what
/// analysis::ScenarioBuilder's network hooks accumulate. Every default
/// is "no adversity"; any() tells whether a model needs building at all.
struct NetworkConditions {
  double lossRate = 0.0;            ///< Bernoulli per-crossing loss
  bool burstLoss = false;           ///< enable Gilbert-Elliott loss
  GilbertElliottLink::Params burst{};
  double duplicateRate = 0.0;
  double reorderRate = 0.0;
  std::uint32_t reorderMaxTicks = 3;
  ClusterLatency clusterLatency{};
  BandwidthCap bandwidth{};
  /// First engine cycle at which the link chain and the bandwidth cap
  /// engage; links are clean before it. The §7 methodology knob: warm
  /// the overlay up undisturbed, then degrade the links (sustained loss
  /// during warm-up starves CYCLON views instead of testing
  /// dissemination). Cluster latency is *not* gated — heterogeneous
  /// delay shaping overlay construction is the point of modelling it.
  std::uint64_t startCycle = 0;

  /// Declarative partition plan (resolved against the built Network).
  struct PartitionPlan {
    enum class Kind : std::uint8_t { kNone, kRingSplit, kRingArc };
    Kind kind = Kind::kNone;
    std::uint32_t groups = 2;   ///< kRingSplit
    double arcFraction = 0.25;  ///< kRingArc
    /// Blackout windows in *cycles*, [startCycle, endCycle): the window
    /// covers the cycles executed while Engine::cycle() is in range —
    /// whoever builds the model multiplies by ticksPerCycle.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> windowsCycles;
  };
  PartitionPlan partition{};

  bool any() const noexcept {
    return lossRate > 0.0 || burstLoss || duplicateRate > 0.0 ||
           reorderRate > 0.0 || clusterLatency.clusters > 0 ||
           bandwidth.messagesPerTick > 0 ||
           partition.kind != PartitionPlan::Kind::kNone;
  }
};

/// The composed per-link condition layer one simulated system traffics
/// through (see file comment for the invariants). Owned by the scenario;
/// sim::LatencyTransport consults it once per send.
class NetworkModel {
 public:
  /// Builds the link-model chain `conditions` describes. The partition
  /// plan needs the population's ring order, hence the Network, and its
  /// cycle-denominated windows scale by `ticksPerCycle`; `seed` feeds
  /// the model's private rng stream (loss/duplication/reorder draws and
  /// the arc-position draw).
  NetworkModel(const NetworkConditions& conditions, const Network& network,
               std::uint32_t ticksPerCycle, std::uint64_t seed);

  /// An empty model (no conditions) for custom assembly via addLink /
  /// setPartitions.
  explicit NetworkModel(std::uint64_t seed);

  NetworkModel(const NetworkModel&) = delete;
  NetworkModel& operator=(const NetworkModel&) = delete;

  /// Appends a condition to the chain (applied in insertion order).
  void addLink(std::unique_ptr<LinkModel> link);

  /// Installs/replaces the partition schedule.
  void setPartitions(PartitionSchedule schedule);
  /// Null when no schedule is installed.
  const PartitionSchedule* partitions() const noexcept {
    return hasPartitions_ ? &partitions_ : nullptr;
  }

  void setClusterLatency(ClusterLatency clusters) { clusters_ = clusters; }
  void setBandwidth(BandwidthCap cap) { bandwidth_ = cap; }

  /// Pre-sizes the per-sender egress bookkeeping so steady-state sends
  /// never grow it (the zero-alloc contract). Called by the scenario
  /// with Network::totalCreated().
  void reserveNodes(std::uint32_t totalNodes);

  // -- the scheduling-time queries (LatencyTransport::send) -------------

  /// Resolves loss / partition veto / duplication / reorder for one
  /// message from `src` to `dst` scheduled at `tick`. copies == 0 means
  /// the message is dropped (counters say why).
  LinkFate resolve(NodeId src, NodeId dst, std::uint64_t tick);

  /// The base latency draw for this link: cluster intra/inter when
  /// cluster latency is configured, otherwise `fallback` (the
  /// scenario's global LatencyModel). Draws from `rng` — the
  /// transport's stream, so configuring a model does not disturb the
  /// draw sequence of latency itself.
  std::uint64_t latencyTicks(NodeId src, NodeId dst,
                             const LatencyModel& fallback, Rng& rng);

  /// FIFO egress queueing delay for a message `src` sends at `tick`
  /// (0 unless a bandwidth cap is configured and the sender is backed
  /// up). Consumes one slot of the sender's per-tick budget — the
  /// transport calls this for every *attempted* send, including ones
  /// the link then loses: transmission precedes loss.
  std::uint64_t egressDelay(NodeId src, std::uint64_t tick);

  /// The cluster a node hashes into (0 when clusters are disabled).
  std::uint32_t clusterOf(NodeId node) const noexcept;

  // -- accounting --------------------------------------------------------

  std::uint64_t droppedByLoss() const noexcept { return droppedByLoss_; }
  std::uint64_t droppedByPartition() const noexcept {
    return droppedByPartition_;
  }
  std::uint64_t duplicated() const noexcept { return duplicated_; }
  std::uint64_t reordered() const noexcept { return reordered_; }
  /// Sends that experienced a non-zero egress queueing delay, and the
  /// total / maximum delay in ticks.
  std::uint64_t queuedSends() const noexcept { return queuedSends_; }
  std::uint64_t queuedDelayTotal() const noexcept {
    return queuedDelayTotal_;
  }
  std::uint64_t maxQueueDelay() const noexcept { return maxQueueDelay_; }

  const NetworkConditions& conditions() const noexcept { return conditions_; }

 private:
  NetworkConditions conditions_{};
  std::vector<std::unique_ptr<LinkModel>> chain_;
  PartitionSchedule partitions_;
  bool hasPartitions_ = false;
  ClusterLatency clusters_{};
  BandwidthCap bandwidth_{};
  Rng rng_;
  /// Tick before which the link chain and bandwidth cap stay disengaged
  /// (NetworkConditions::startCycle × ticksPerCycle).
  std::uint64_t activeFromTick_ = 0;
  /// Per-sender next free egress slot, in absolute message slots (tick t
  /// owns slots [t*B, (t+1)*B)); max(current tick's first slot, the
  /// slot after the last departure) is where the next message departs.
  std::vector<std::uint64_t> nextEgressSlot_;
  std::uint64_t droppedByLoss_ = 0;
  std::uint64_t droppedByPartition_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t reordered_ = 0;
  std::uint64_t queuedSends_ = 0;
  std::uint64_t queuedDelayTotal_ = 0;
  std::uint64_t maxQueueDelay_ = 0;
};

}  // namespace vs07::sim
