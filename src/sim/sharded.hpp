// Sharded-execution protocol interface (see sim/sharded_engine.hpp).
//
// A ShardedProtocol is the parallel counterpart of sim::CycleProtocol:
// the population is partitioned into shards, each driven by one worker,
// and every callback for node n may touch ONLY
//   * per-node state indexed by n (views_[n], pendingSent_[n], ...),
//   * read-only shared state (Network attributes, protocol params), and
//   * the per-worker resources handed in through ShardContext.
// Cross-node effects flow exclusively through ctx.transport(): sends are
// buffered by the engine and delivered after a barrier, to every
// destination node in canonical (sender, send-sequence) order — so the
// run's results are a pure function of the seed, independent of the
// worker count, the shard layout, and OS scheduling.
//
// Randomness discipline: every callback draws from ctx.rng(), a stream
// derived via deriveStreamSeed(engineSeed, node, perNodeEventIndex) — the
// same derivation discipline analysis::ParallelSweep and
// runtime::NodeProcess use. A node's streams depend only on its own
// (deterministic) event history, never on which thread ran it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "net/message.hpp"
#include "net/transport.hpp"

namespace vs07::sim {

/// Per-worker execution context handed to every sharded callback. All
/// resources are exclusive to the worker for the duration of the
/// callback; scratch buffers are recycled between callbacks (reset/clear
/// before use, exactly like the protocols' instance scratch in the
/// sequential engine).
class ShardContext {
 public:
  ShardContext(std::uint32_t shard, net::Transport& transport)
      : shard_(shard), transport_(&transport) {}

  /// The acting node's RNG stream for this callback (reseeded by the
  /// engine before each step/delivery from the node's event counter).
  Rng& rng() noexcept { return rng_; }

  /// Barrier-buffered sender: messages land at their destination after
  /// the current parallel phase, in canonical order. Same move-only
  /// contract as every net::Transport (the payload is recycled).
  net::Transport& transport() noexcept { return *transport_; }

  /// Message-assembly scratch (one per worker; reset before use).
  net::Message& messageScratch() noexcept { return messageScratch_; }

  /// Id-list scratch (reply bookkeeping and the like).
  std::vector<NodeId>& idScratch() noexcept { return idScratch_; }

  /// Descriptor-pool scratch (proximity merges).
  std::vector<net::PeerDescriptor>& poolScratch() noexcept {
    return poolScratch_;
  }

  /// Which shard this context drives (index per-shard counters with it).
  std::uint32_t shard() const noexcept { return shard_; }

 private:
  friend class ShardedEngine;
  std::uint32_t shard_;
  net::Transport* transport_;
  Rng rng_{0};
  net::Message messageScratch_;
  std::vector<NodeId> idScratch_;
  std::vector<net::PeerDescriptor> poolScratch_;
};

/// A protocol instance that can run under the sharded engine. Implemented
/// by gossip::Cyclon and gossip::MultiRing alongside their sequential
/// CycleProtocol paths.
class ShardedProtocol {
 public:
  virtual ~ShardedProtocol() = default;

  /// Called once when the protocol is registered, with the shard count —
  /// size per-shard counters here.
  virtual void onShardedAttach(std::uint32_t shardCount) = 0;

  /// One active gossip step of `self` (the parallel twin of
  /// CycleProtocol::step). Runs on the worker owning self's shard.
  virtual void shardStep(NodeId self, ShardContext& ctx) = 0;

  /// Delivers one message addressed to `to` if this protocol handles its
  /// (kind, channel); returns whether it was handled. Runs on the worker
  /// owning to's shard.
  virtual bool shardDeliver(NodeId to, const net::Message& msg,
                            ShardContext& ctx) = 0;
};

}  // namespace vs07::sim
