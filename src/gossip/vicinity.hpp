// VICINITY — proactive gossip-based construction of semantic/proximity
// overlays (Voulgaris & van Steen). The paper's d-link substrate: with the
// ring-distance proximity over random sequence ids, each node's view
// converges to the peers closest to it on the id ring, from which the two
// ring neighbours (successor, predecessor) — the d-links — are read.
//
// Two-layer design as in the original protocol: VICINITY exchanges draw
// candidates from both the vicinity view and the underlying CYCLON view,
// so fresh random peers keep feeding the proximity selection and the ring
// can form from any bootstrap topology.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "gossip/cyclon.hpp"
#include "gossip/view.hpp"
#include "net/transport.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "sim/router.hpp"
#include "sim/sharded.hpp"

namespace vs07::gossip {

/// Maps a node to its position on the ring this VICINITY instance builds.
/// The default uses Network::seqId; the multi-ring extension (§8) derives
/// per-ring positions by salting the advertised sequence id, and the
/// domain-ring extension encodes a domain prefix into the high bits.
using ProfileFn = std::function<SequenceId(NodeId)>;

/// The resolved deterministic links of one node (its ring neighbours).
struct RingNeighbors {
  NodeId successor = kNoNode;    ///< closest peer clockwise (higher id)
  NodeId predecessor = kNoNode;  ///< closest peer counter-clockwise
};

/// VICINITY protocol instance managing the proximity views of all nodes.
class Vicinity final : public sim::CycleProtocol,
                       public sim::MembershipObserver,
                       public sim::JoinHandler,
                       public sim::ShardedProtocol {
 public:
  struct Params {
    /// View length (the paper's vic = 20).
    std::uint32_t viewLength = 20;
    /// Entries offered per exchange.
    std::uint32_t exchangeLength = 10;
    /// Message channel: give each VICINITY instance (each ring) its own.
    std::uint8_t channel = 0;
    /// After a request timeout the failed peer is refused re-admission
    /// for this many of the node's own steps (negative caching; prevents
    /// neighbours from endlessly resurrecting a dead close peer).
    std::uint32_t failureBanSteps = 20;
  };

  /// `cyclon` provides the random-peer layer candidates. `profile` may be
  /// empty, defaulting to Network::seqId. Borrowed references must outlive
  /// the protocol. Handler registration uses the Vicinity* message kinds.
  Vicinity(sim::Network& network, net::Transport& transport,
           sim::MessageRouter& router, const Cyclon& cyclon, Params params,
           std::uint64_t seed, ProfileFn profile = {});

  Vicinity(const Vicinity&) = delete;
  Vicinity& operator=(const Vicinity&) = delete;

  // sim::CycleProtocol — one active proximity exchange.
  void step(NodeId self) override;

  // sim::ShardedProtocol — the same exchange under the sharded engine
  // (per-node RNG stream, per-worker scratch). Claims only messages on
  // this instance's channel, so multi-ring dispatch works unchanged.
  void onShardedAttach(std::uint32_t shardCount) override;
  void shardStep(NodeId self, sim::ShardContext& ctx) override;
  bool shardDeliver(NodeId to, const net::Message& msg,
                    sim::ShardContext& ctx) override;

  // sim::JoinHandler — joiners start with an empty vicinity view and rely
  // on the CYCLON layer to meet candidates (the behaviour behind the
  // paper's Fig. 13 warm-up discussion).
  void onJoin(NodeId node, NodeId introducer) override;

  // sim::MembershipObserver
  void onReserve(NodeId count) override;
  void onSpawn(NodeId node) override;
  void onKill(NodeId node) override;

  /// The node's proximity view (closest known peers by ring distance).
  const View& view(NodeId node) const;

  /// The node's current d-links, resolved from its view: the known peers
  /// with the smallest clockwise / counter-clockwise distance. kNoNode
  /// when the view is empty.
  RingNeighbors ringNeighbors(NodeId node) const;

  /// The node's `width` nearest known successors plus `width` nearest
  /// known predecessors (deduplicated, nearest first per direction). At
  /// convergence this is the circulant band C(1..width) — forwarding
  /// across it realises the §8 "Harary graphs of higher connectivity"
  /// extension: the d-link graph becomes H(2·width, n).
  std::vector<NodeId> ringBand(NodeId node, std::uint32_t width) const;

  /// Ring position of a node under this instance's profile function.
  SequenceId profileOf(NodeId node) const { return profile_(node); }

  const Params& params() const noexcept { return params_; }

 private:
  void handleRequest(NodeId self, const net::Message& msg);
  void handleReply(NodeId self, const net::Message& msg);

  /// Step/handler bodies parameterized on RNG and scratch: the sequential
  /// paths pass the instance members (bit-for-bit the historical
  /// behaviour), the sharded paths pass the worker's ShardContext
  /// resources.
  void stepImpl(NodeId self, Rng& rng, net::Transport& transport,
                net::Message& requestScratch,
                std::vector<PeerDescriptor>& poolScratch);
  void handleRequestImpl(NodeId self, const net::Message& msg,
                         net::Transport& transport,
                         net::Message& replyScratch,
                         std::vector<PeerDescriptor>& poolScratch);
  void handleReplyImpl(NodeId self, const net::Message& msg,
                       std::vector<PeerDescriptor>& poolScratch);

  /// Candidates = own vicinity view ∪ own cyclon view ∪ self descriptor,
  /// deduplicated, excluding `target`; the best `exchangeLength` for the
  /// *target's* profile fill `out` (best-for-target selection). The
  /// pre-trim pool is assembled in `pool` (long-lived scratch) so `out` —
  /// typically a message's entries, whose capacity is retained by every
  /// outbox slot it circulates through — never holds more than the
  /// trimmed offer. Both are cleared first; steady state allocates
  /// nothing.
  void offerInto(NodeId self, NodeId target, SequenceId targetProfile,
                 std::vector<PeerDescriptor>& pool,
                 std::vector<PeerDescriptor>& out) const;

  /// Keeps the `viewLength` closest candidates to self among view ∪
  /// incoming, assembling them in `poolScratch`.
  void mergeByProximity(NodeId self, std::span<const PeerDescriptor> incoming,
                        std::vector<PeerDescriptor>& poolScratch);

  PeerDescriptor selfDescriptor(NodeId node) const;

  sim::Network& network_;
  net::Transport& transport_;
  const Cyclon& cyclon_;
  Params params_;
  Rng rng_;
  ProfileFn profile_;
  std::vector<View> views_;
  /// Target of each node's outstanding request; a target that never
  /// replies by the next step is treated as failed and dropped from the
  /// view (timeout failure detection, enabling ring self-healing).
  std::vector<NodeId> pendingTarget_;

  /// Negative cache of recently failed peers (see Params::failureBanSteps).
  struct Ban {
    NodeId node;
    std::uint64_t expiresAtStep;
  };
  bool isBanned(NodeId self, NodeId peer) const;
  void ban(NodeId self, NodeId peer);
  std::vector<std::vector<Ban>> bans_;
  std::vector<std::uint64_t> stepCount_;

  /// Exchange scratch (one set per ring instance, not per exchange):
  /// request/reply messages and the proximity-merge candidate pool are
  /// reset and refilled each exchange, recycling their buffers. Safe
  /// under the single-threaded exchange chains: the merge pool is never
  /// live across a nested send of the same instance.
  net::Message requestScratch_;
  net::Message replyScratch_;
  std::vector<PeerDescriptor> mergePoolScratch_;
};

}  // namespace vs07::gossip
