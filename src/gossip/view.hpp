// Bounded partial view of the network — the core data structure of both
// CYCLON (random neighbours, r-links) and VICINITY (closest neighbours,
// d-link candidates).
//
// Invariants (checked in mutators):
//   * at most `capacity` entries,
//   * no entry for the owner itself,
//   * no duplicate node ids.
//
// Storage: entries live in a fixed inline buffer for capacities up to
// kInlineCapacity (the paper's view lengths fit), so a population's views
// are one dense block inside the protocol's views_ vector — no per-view
// heap allocation, no pointer chase on the shuffle hot path, and a
// guaranteed no-realloc steady state. Larger capacities fall back to one
// heap block sized exactly at construction; either way the entry buffer
// never grows or moves after the View is built.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "net/message.hpp"

namespace vs07::gossip {

using net::PeerDescriptor;

/// Fixed-capacity set of PeerDescriptors owned by one node.
class View {
 public:
  /// Capacities up to this are stored inline (no heap block). Covers the
  /// paper's view lengths (cyc = vic = 20).
  static constexpr std::uint32_t kInlineCapacity = 20;

  View() = default;

  /// Creates an empty view owned by `owner` with the given capacity.
  View(NodeId owner, std::uint32_t capacity) : owner_(owner) {
    VS07_EXPECT(capacity > 0);
    capacity_ = capacity;
    if (capacity_ > kInlineCapacity)
      heap_ = std::make_unique<PeerDescriptor[]>(capacity_);
  }

  View(const View& other) { copyFrom(other); }
  View& operator=(const View& other) {
    if (this != &other) copyFrom(other);
    return *this;
  }
  View(View&&) noexcept = default;
  View& operator=(View&&) noexcept = default;

  NodeId owner() const noexcept { return owner_; }
  std::uint32_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  bool full() const noexcept { return size_ >= capacity_; }

  /// True when the entries live in the inline buffer (no heap block).
  bool storesInline() const noexcept { return heap_ == nullptr; }

  std::span<const PeerDescriptor> entries() const noexcept {
    return {data(), size_};
  }
  const PeerDescriptor& at(std::size_t i) const {
    VS07_EXPECT(i < size_);
    return data()[i];
  }

  /// Index of the entry for `node`, or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t indexOf(NodeId node) const noexcept;
  bool contains(NodeId node) const noexcept {
    return indexOf(node) != npos;
  }

  /// Index of the entry with the highest age (CYCLON's exchange partner
  /// choice). Requires non-empty.
  std::size_t oldestIndex() const;

  /// Adds an entry. Requires: not full, not self, not a duplicate.
  void add(const PeerDescriptor& entry);

  /// Removes the entry at `i` (order not preserved — O(1)).
  void removeAt(std::size_t i);

  /// Removes the entry for `node` if present; returns whether it was.
  bool removeNode(NodeId node);

  /// Increments every entry's age by one (start of an active gossip step).
  void incrementAges() noexcept;

  /// Copies of `count` distinct random entries, excluding `exclude`
  /// (pass kNoNode for no exclusion). Returns fewer if the view is small.
  std::vector<PeerDescriptor> randomEntries(std::size_t count, NodeId exclude,
                                            Rng& rng) const;

  /// Allocation-free variant: fills `out` (cleared first; capacity is
  /// reused) with the same sample, consuming `rng` identically to
  /// randomEntries. Protocols pass a per-instance scratch buffer so a
  /// steady-state exchange never touches the allocator.
  void randomEntriesInto(std::size_t count, NodeId exclude, Rng& rng,
                         std::vector<PeerDescriptor>& out) const;

  /// Removes everything (node death / reset).
  void clear() noexcept { size_ = 0; }

 private:
  const PeerDescriptor* data() const noexcept {
    return heap_ ? heap_.get() : inline_.data();
  }
  PeerDescriptor* data() noexcept {
    return heap_ ? heap_.get() : inline_.data();
  }
  void copyFrom(const View& other);

  NodeId owner_ = kNoNode;
  std::uint32_t capacity_ = 0;
  std::uint32_t size_ = 0;
  std::array<PeerDescriptor, kInlineCapacity> inline_{};
  /// Engaged only when capacity_ > kInlineCapacity; sized exactly.
  std::unique_ptr<PeerDescriptor[]> heap_;
};

}  // namespace vs07::gossip
