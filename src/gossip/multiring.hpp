// Multi-ring d-link maintenance — the reliability extension sketched in §8:
// "organize nodes in multiple rings, assigning them a different random ID
// per ring", raising the d-link graph's connectivity beyond the single
// ring's minimal cut of two.
//
// Each ring is an independent VICINITY instance on its own message channel.
// A node's position on ring r is derived from its advertised sequence id:
// mix64(seqId ^ salt_r). Deriving (rather than storing) the per-ring ids
// keeps wire descriptors unchanged while still giving statistically
// independent ring orders.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gossip/vicinity.hpp"

namespace vs07::gossip {

/// A bundle of `ringCount` independent VICINITY rings.
class MultiRing final : public sim::CycleProtocol,
                        public sim::JoinHandler,
                        public sim::ShardedProtocol {
 public:
  /// Creates `ringCount` rings on channels [0, ringCount). Borrowed
  /// references must outlive this object.
  MultiRing(sim::Network& network, net::Transport& transport,
            sim::MessageRouter& router, const Cyclon& cyclon,
            Vicinity::Params baseParams, std::uint32_t ringCount,
            std::uint64_t seed);

  std::uint32_t ringCount() const noexcept {
    return static_cast<std::uint32_t>(rings_.size());
  }

  /// Ring r's VICINITY instance.
  const Vicinity& ring(std::uint32_t r) const;

  /// d-links of `node` on every ring (successor+predecessor per ring).
  std::vector<RingNeighbors> allRingNeighbors(NodeId node) const;

  // sim::CycleProtocol — steps every ring.
  void step(NodeId self) override;

  // sim::ShardedProtocol — steps every ring from the node's single event
  // stream (rings draw sequentially, in ring order); deliveries dispatch
  // to the ring owning the message's channel.
  void onShardedAttach(std::uint32_t shardCount) override;
  void shardStep(NodeId self, sim::ShardContext& ctx) override;
  bool shardDeliver(NodeId to, const net::Message& msg,
                    sim::ShardContext& ctx) override;

  // sim::JoinHandler — forwards the join to every ring.
  void onJoin(NodeId node, NodeId introducer) override;

 private:
  std::vector<std::unique_ptr<Vicinity>> rings_;
};

}  // namespace vs07::gossip
