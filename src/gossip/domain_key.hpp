// Domain-proximity sequence ids — the §8 optimisation:
//
//   "a node forms its ID by reversing its domain name (country domain
//    first) and appending a randomly chosen number. [...] nodes naturally
//    self-organize in a ring sorted by domain name, and domains sorted by
//    country."
//
// We encode the reversed domain into the high bits of the 64-bit sequence
// id and randomness into the low bits, so plain ring-distance VICINITY
// clusters same-domain nodes without any protocol change.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/node_id.hpp"

namespace vs07::gossip {

/// "inf.ethz.ch" -> "ch.ethz.inf" (country label first).
std::string reverseDomain(std::string_view domain);

/// Builds a sequence id whose high 40 bits order lexicographically by the
/// *reversed* domain (5 characters of precision — country plus the start
/// of the organisation label) and whose low 24 bits are the given random
/// value (24 bits keep same-domain collisions negligible at realistic
/// domain sizes). Nodes of the same domain are therefore contiguous on
/// the ring.
SequenceId domainSequenceId(std::string_view domain, std::uint32_t random);

/// Extracts the 5-character reversed-domain prefix encoded in a sequence
/// id built by domainSequenceId (trailing padding stripped). For tests and
/// display only — real nodes compare ids numerically.
std::string domainPrefixOf(SequenceId id);

}  // namespace vs07::gossip
