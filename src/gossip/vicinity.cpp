#include "gossip/vicinity.hpp"

#include <algorithm>
#include <utility>

namespace vs07::gossip {

namespace {

/// Appends `entry` to `pool` unless an entry for the same node exists, in
/// which case the *fresher* (lower age) of the two is kept.
void poolInsert(std::vector<PeerDescriptor>& pool,
                const PeerDescriptor& entry) {
  for (auto& existing : pool) {
    if (existing.node == entry.node) {
      if (entry.age < existing.age) existing = entry;
      return;
    }
  }
  pool.push_back(entry);
}

/// Reduces `pool` to at most `budget` entries forming a balanced band
/// around `anchor` on the id ring: the closest ⌈budget/2⌉ in clockwise
/// (successor) direction plus the closest ⌊budget/2⌋ counter-clockwise.
///
/// This is the paper's §6 view content — "peers with gradually higher and
/// lower sequence IDs" — and, unlike a symmetric nearest-k selection, it
/// keeps both ring directions represented even when sequence ids are
/// clustered (e.g. the §8 domain-sorted ring, where a node's whole
/// cluster is nearer than its true cross-cluster successor).
void selectRingBand(SequenceId anchor, std::vector<PeerDescriptor>& pool,
                    std::size_t budget) {
  if (pool.size() <= budget) return;
  // Sort by clockwise distance from the anchor (ties by node id for
  // determinism). The first entries are the nearest successors; the last
  // are the nearest predecessors.
  std::sort(pool.begin(), pool.end(),
            [anchor](const PeerDescriptor& a, const PeerDescriptor& b) {
              const auto da = clockwiseDistance(anchor, a.profile);
              const auto db = clockwiseDistance(anchor, b.profile);
              if (da != db) return da < db;
              return a.node < b.node;
            });
  const std::size_t succCount = (budget + 1) / 2;
  const std::size_t predCount = budget - succCount;
  // [0, succCount) stays; move the predecessor tail up behind it.
  for (std::size_t i = 0; i < predCount; ++i)
    pool[succCount + i] = pool[pool.size() - predCount + i];
  pool.resize(budget);
}

}  // namespace

Vicinity::Vicinity(sim::Network& network, net::Transport& transport,
                   sim::MessageRouter& router, const Cyclon& cyclon,
                   Params params, std::uint64_t seed, ProfileFn profile)
    : network_(network),
      transport_(transport),
      cyclon_(cyclon),
      params_(params),
      rng_(seed),
      profile_(std::move(profile)) {
  VS07_EXPECT(params_.viewLength > 0);
  VS07_EXPECT(params_.exchangeLength > 0);
  if (!profile_)
    profile_ = [&network](NodeId n) { return network.seqId(n); };
  router.route(
      net::MessageKind::VicinityRequest,
      [this](NodeId to, const net::Message& m) { handleRequest(to, m); },
      params_.channel);
  router.route(
      net::MessageKind::VicinityReply,
      [this](NodeId to, const net::Message& m) { handleReply(to, m); },
      params_.channel);
  network.addObserver(*this);
}

PeerDescriptor Vicinity::selfDescriptor(NodeId node) const {
  return PeerDescriptor{node, 0, profile_(node)};
}

void Vicinity::onReserve(NodeId count) {
  views_.reserve(count);
  pendingTarget_.reserve(count);
  bans_.reserve(count);
  stepCount_.reserve(count);
}

void Vicinity::onSpawn(NodeId node) {
  if (node >= views_.size()) {
    views_.resize(node + 1);
    pendingTarget_.resize(node + 1, kNoNode);
    bans_.resize(node + 1);
    stepCount_.resize(node + 1, 0);
  }
  views_[node] = View(node, params_.viewLength);
  pendingTarget_[node] = kNoNode;
  bans_[node].clear();
}

void Vicinity::onKill(NodeId node) {
  views_[node].clear();
  pendingTarget_[node] = kNoNode;
  bans_[node].clear();
}

void Vicinity::onJoin(NodeId node, NodeId /*introducer*/) {
  // Joiners start cold: the proximity view fills from CYCLON candidates
  // over the next cycles (the warm-up the paper discusses for Fig. 13).
  views_[node].clear();
  pendingTarget_[node] = kNoNode;
  bans_[node].clear();
}

bool Vicinity::isBanned(NodeId self, NodeId peer) const {
  for (const auto& b : bans_[self])
    if (b.node == peer && b.expiresAtStep > stepCount_[self]) return true;
  return false;
}

void Vicinity::ban(NodeId self, NodeId peer) {
  auto& list = bans_[self];
  // Drop expired entries while we are here; the list stays tiny.
  std::erase_if(list, [this, self](const Ban& b) {
    return b.expiresAtStep <= stepCount_[self];
  });
  list.push_back({peer, stepCount_[self] + params_.failureBanSteps});
}

const View& Vicinity::view(NodeId node) const {
  VS07_EXPECT(node < views_.size());
  return views_[node];
}

RingNeighbors Vicinity::ringNeighbors(NodeId node) const {
  const View& v = view(node);
  const SequenceId self = profile_(node);
  RingNeighbors result;
  std::uint64_t bestSucc = 0;
  std::uint64_t bestPred = 0;
  for (const auto& e : v.entries()) {
    const auto cw = clockwiseDistance(self, e.profile);
    const auto ccw = clockwiseDistance(e.profile, self);
    if (result.successor == kNoNode || cw < bestSucc) {
      bestSucc = cw;
      result.successor = e.node;
    }
    if (result.predecessor == kNoNode || ccw < bestPred) {
      bestPred = ccw;
      result.predecessor = e.node;
    }
  }
  return result;
}

std::vector<NodeId> Vicinity::ringBand(NodeId node,
                                       std::uint32_t width) const {
  VS07_EXPECT(width >= 1);
  const View& v = view(node);
  const SequenceId self = profile_(node);

  std::vector<PeerDescriptor> sorted(v.entries().begin(), v.entries().end());
  std::sort(sorted.begin(), sorted.end(),
            [self](const PeerDescriptor& a, const PeerDescriptor& b) {
              const auto da = clockwiseDistance(self, a.profile);
              const auto db = clockwiseDistance(self, b.profile);
              if (da != db) return da < db;
              return a.node < b.node;
            });

  std::vector<NodeId> band;
  band.reserve(2 * width);
  const std::size_t succ = std::min<std::size_t>(width, sorted.size());
  for (std::size_t i = 0; i < succ; ++i) band.push_back(sorted[i].node);
  // Predecessors: nearest counter-clockwise = largest clockwise distance.
  for (std::size_t i = 0; i < width && i < sorted.size(); ++i) {
    const NodeId candidate = sorted[sorted.size() - 1 - i].node;
    if (std::find(band.begin(), band.end(), candidate) == band.end())
      band.push_back(candidate);
  }
  return band;
}

void Vicinity::step(NodeId self) {
  stepImpl(self, rng_, transport_, requestScratch_, mergePoolScratch_);
}

void Vicinity::stepImpl(NodeId self, Rng& rng, net::Transport& transport,
                        net::Message& requestScratch,
                        std::vector<PeerDescriptor>& poolScratch) {
  View& v = views_[self];
  ++stepCount_[self];

  // Timeout-based failure detection: if the previous exchange never got a
  // reply, the target is unreachable — drop it (and refuse re-admission
  // for a while) so the ring can re-close around failures once gossip
  // resumes (§7.2's "self-healing").
  if (pendingTarget_[self] != kNoNode) {
    v.removeNode(pendingTarget_[self]);
    ban(self, pendingTarget_[self]);
    pendingTarget_[self] = kNoNode;
  }

  v.incrementAges();

  // Partner selection: alternate between exploiting the proximity view
  // (oldest entry, keeps close neighbourhoods fresh) and exploring via a
  // random CYCLON peer (feeds fresh candidates; lets joiners bootstrap).
  NodeId q = kNoNode;
  const View& randomLayer = cyclon_.view(self);
  const bool exploit = !v.empty() && (randomLayer.empty() || rng.chance(0.5));
  if (exploit) {
    q = v.at(v.oldestIndex()).node;
  } else if (!randomLayer.empty()) {
    q = randomLayer.at(rng.below(randomLayer.size())).node;
  }
  if (q == kNoNode) return;  // no peers at all

  net::Message& request = requestScratch;
  request.reset();
  request.kind = net::MessageKind::VicinityRequest;
  request.channel = params_.channel;
  request.from = self;
  offerInto(self, q, profile_(q), poolScratch, request.entries);
  pendingTarget_[self] = q;
  transport.send(q, std::move(request));
}

void Vicinity::offerInto(NodeId self, NodeId target,
                         SequenceId targetProfile,
                         std::vector<PeerDescriptor>& pool,
                         std::vector<PeerDescriptor>& out) const {
  // Candidates are pooled in `pool` (a long-lived scratch) and only the
  // trimmed band is copied into `out`. Message buffers circulate through
  // the sharded engine's outbox slots, so their high-water capacity is a
  // per-slot memory cost at scale: keeping the pre-trim pool (both view
  // lengths' worth of candidates) out of the message caps every slot at
  // exchangeLength entries instead of ~4x that.
  pool.clear();
  for (const auto& e : views_[self].entries())
    if (e.node != target) poolInsert(pool, e);
  for (const auto& e : cyclon_.view(self).entries()) {
    if (e.node == target) continue;
    // Translate the random-layer descriptor into this ring's profile
    // space (identity for the default ring; salted for multi-ring).
    poolInsert(pool, PeerDescriptor{e.node, e.age, profile_(e.node)});
  }
  selectRingBand(targetProfile, pool, params_.exchangeLength - 1);
  out.assign(pool.begin(), pool.end());
  // Our own fresh descriptor always travels along: the target must learn
  // about us to ever point a d-link our way.
  out.push_back(selfDescriptor(self));
}

void Vicinity::handleRequest(NodeId self, const net::Message& msg) {
  handleRequestImpl(self, msg, transport_, replyScratch_, mergePoolScratch_);
}

void Vicinity::handleRequestImpl(NodeId self, const net::Message& msg,
                                 net::Transport& transport,
                                 net::Message& replyScratch,
                                 std::vector<PeerDescriptor>& poolScratch) {
  // The initiator's descriptor is always in the offer (see offerInto).
  SequenceId initiatorProfile = profile_(msg.from);
  for (const auto& e : msg.entries)
    if (e.node == msg.from) {
      initiatorProfile = e.profile;
      break;
    }

  net::Message& reply = replyScratch;
  reply.reset();
  reply.kind = net::MessageKind::VicinityReply;
  reply.channel = params_.channel;
  reply.from = self;
  offerInto(self, msg.from, initiatorProfile, poolScratch, reply.entries);
  transport.send(msg.from, std::move(reply));

  mergeByProximity(self, msg.entries, poolScratch);
}

void Vicinity::handleReply(NodeId self, const net::Message& msg) {
  handleReplyImpl(self, msg, mergePoolScratch_);
}

void Vicinity::handleReplyImpl(NodeId self, const net::Message& msg,
                               std::vector<PeerDescriptor>& poolScratch) {
  pendingTarget_[self] = kNoNode;  // partner is alive
  mergeByProximity(self, msg.entries, poolScratch);
}

void Vicinity::onShardedAttach(std::uint32_t /*shardCount*/) {}

void Vicinity::shardStep(NodeId self, sim::ShardContext& ctx) {
  stepImpl(self, ctx.rng(), ctx.transport(), ctx.messageScratch(),
           ctx.poolScratch());
}

bool Vicinity::shardDeliver(NodeId to, const net::Message& msg,
                            sim::ShardContext& ctx) {
  if (msg.channel != params_.channel) return false;
  switch (msg.kind) {
    case net::MessageKind::VicinityRequest:
      handleRequestImpl(to, msg, ctx.transport(), ctx.messageScratch(),
                        ctx.poolScratch());
      return true;
    case net::MessageKind::VicinityReply:
      handleReplyImpl(to, msg, ctx.poolScratch());
      return true;
    default:
      return false;
  }
}

void Vicinity::mergeByProximity(NodeId self,
                                std::span<const PeerDescriptor> incoming,
                                std::vector<PeerDescriptor>& poolScratch) {
  View& v = views_[self];
  std::vector<PeerDescriptor>& pool = poolScratch;
  pool.clear();
  for (const auto& e : v.entries()) poolInsert(pool, e);
  for (const auto& e : incoming)
    if (e.node != self && !isBanned(self, e.node)) poolInsert(pool, e);

  selectRingBand(profile_(self), pool, params_.viewLength);

  v.clear();
  for (const auto& e : pool) v.add(e);
}

}  // namespace vs07::gossip
