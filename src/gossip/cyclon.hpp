// CYCLON — inexpensive membership management for unstructured P2P overlays
// (Voulgaris, Gavidia, van Steen; JNSM 2005). The paper's r-link substrate.
//
// Enhanced shuffle, one active exchange per node per cycle:
//   1. increment the age of every view entry;
//   2. pick the *oldest* neighbour Q and remove it from the view;
//   3. send Q a random subset of g-1 other entries plus a fresh
//      descriptor of ourselves (age 0);
//   4. Q replies with up to g random entries of its own view and merges
//      our entries, preferring empty slots, then slots of entries it just
//      sent us;
//   5. we merge Q's reply the same way (the slot freed by removing Q
//      counts as empty).
//
// Dead peers are forgotten for free: the oldest entry is removed before
// contacting it, and a dead Q never replies, so its slot is simply
// reused — CYCLON's implicit failure detection, which the churn
// experiments (§7.3) rely on.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "gossip/peer_sampling.hpp"
#include "gossip/view.hpp"
#include "net/transport.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "sim/router.hpp"
#include "sim/sharded.hpp"

namespace vs07::gossip {

/// CYCLON protocol instance managing the views of all simulated nodes.
class Cyclon final : public sim::CycleProtocol,
                     public sim::MembershipObserver,
                     public sim::JoinHandler,
                     public PeerSamplingService,
                     public sim::ShardedProtocol {
 public:
  struct Params {
    /// View length ℓ (the paper's cyc = 20).
    std::uint32_t viewLength = 20;
    /// Shuffle length g: entries exchanged per gossip (CYCLON default 8).
    std::uint32_t shuffleLength = 8;
  };

  /// Registers message handlers on `router` and sizes per-node state for
  /// all current nodes of `network` (observer registration). All objects
  /// are borrowed and must outlive the protocol.
  Cyclon(sim::Network& network, net::Transport& transport,
         sim::MessageRouter& router, Params params, std::uint64_t seed);

  Cyclon(const Cyclon&) = delete;
  Cyclon& operator=(const Cyclon&) = delete;

  // sim::CycleProtocol — one active shuffle.
  void step(NodeId self) override;

  // sim::ShardedProtocol — same shuffle under the sharded engine, drawing
  // from the acting node's derived RNG stream and the worker's scratch
  // instead of the instance-wide ones.
  void onShardedAttach(std::uint32_t shardCount) override;
  void shardStep(NodeId self, sim::ShardContext& ctx) override;
  bool shardDeliver(NodeId to, const net::Message& msg,
                    sim::ShardContext& ctx) override;

  // sim::JoinHandler — fresh node starts with just the introducer.
  void onJoin(NodeId node, NodeId introducer) override;

  /// Replaces `node`'s view with fresh (age-0) descriptors of `peers` —
  /// self and duplicates skipped, truncated at viewLength. The runtime's
  /// bootstrap WELCOME seeds a joiner's whole view through this instead
  /// of the single-introducer onJoin (the sim's star topology).
  void seedView(NodeId node, std::span<const NodeId> peers);

  /// Admits one fresh descriptor of `peer` into `self`'s view without
  /// clearing it: fills a free slot, else replaces the oldest entry, and
  /// only refreshes the age of an already-present peer. The bootstrap
  /// seed node uses this on HELLO so joiners become reachable through
  /// gossip immediately, however many have announced already.
  void admit(NodeId self, NodeId peer);

  // sim::MembershipObserver
  void onReserve(NodeId count) override;
  void onSpawn(NodeId node) override;
  void onKill(NodeId node) override;

  // PeerSamplingService
  const View& view(NodeId node) const override;

  const Params& params() const noexcept { return params_; }

  /// Total shuffles initiated (diagnostics), across both engines.
  std::uint64_t shufflesInitiated() const noexcept;

 private:
  void handleRequest(NodeId self, const net::Message& msg);
  void handleReply(NodeId self, const net::Message& msg);

  /// The shuffle/handler bodies, parameterized on the RNG and scratch so
  /// the sequential paths (instance members — bit-for-bit the historical
  /// behaviour) and the sharded paths (per-node stream, per-worker
  /// scratch) share one implementation.
  void stepImpl(NodeId self, Rng& rng, net::Transport& transport,
                net::Message& requestScratch,
                std::vector<PeerDescriptor>& sampleScratch,
                std::uint64_t& shuffleCounter);
  void handleRequestImpl(NodeId self, const net::Message& msg, Rng& rng,
                         net::Transport& transport, net::Message& replyScratch,
                         std::vector<PeerDescriptor>& sampleScratch,
                         std::vector<NodeId>& sentScratch);

  /// CYCLON merge: insert `received` into `self`'s view, skipping self-
  /// descriptors and duplicates, filling free slots first and then
  /// replacing entries listed in `sentIds[0, liveCount)` (consumed from
  /// the back; `liveCount` is decremented as victims are spent).
  void merge(NodeId self, std::span<const PeerDescriptor> received,
             std::span<const NodeId> sentIds, std::size_t& liveCount);

  PeerDescriptor selfDescriptor(NodeId node) const;

  sim::Network& network_;
  net::Transport& transport_;
  Params params_;
  Rng rng_;
  std::vector<View> views_;
  /// Ids sent in the outstanding shuffle request of each node (consumed by
  /// the merge when the reply arrives). Flat fixed-stride storage —
  /// `shuffleLength` slots per node, occupancy in pendingCount_ — because
  /// a vector per node costs a header plus a heap chunk for at most
  /// g-1 ids, which dominates the ids themselves at millions of nodes.
  std::vector<NodeId> pendingSent_;
  std::vector<std::uint8_t> pendingCount_;
  /// Exchange scratch (one set per protocol instance, not per exchange):
  /// messages are reset()+refilled each time, so their entry buffers are
  /// recycled and a steady-state shuffle allocates nothing. Safe because
  /// the simulation is single-threaded and a request chain never nests
  /// inside another request chain of the same instance.
  net::Message requestScratch_;
  net::Message replyScratch_;
  /// Pre-sample staging for randomEntriesInto (see stepImpl): message
  /// buffers never hold more than the shuffle subset.
  std::vector<PeerDescriptor> sampleScratch_;
  std::vector<NodeId> replySentScratch_;
  std::uint64_t shuffles_ = 0;
  /// Sharded-mode shuffle counters, one per shard (no cross-worker
  /// contention; summed into shufflesInitiated()).
  std::vector<std::uint64_t> shardShuffles_;
};

}  // namespace vs07::gossip
