#include "gossip/multiring.hpp"

#include "common/expect.hpp"

namespace vs07::gossip {

MultiRing::MultiRing(sim::Network& network, net::Transport& transport,
                     sim::MessageRouter& router, const Cyclon& cyclon,
                     Vicinity::Params baseParams, std::uint32_t ringCount,
                     std::uint64_t seed) {
  VS07_EXPECT(ringCount >= 1);
  VS07_EXPECT(ringCount <= net::kMaxChannel + 1);
  Rng seeder(seed);
  rings_.reserve(ringCount);
  for (std::uint32_t r = 0; r < ringCount; ++r) {
    Vicinity::Params params = baseParams;
    params.channel = static_cast<std::uint8_t>(r);
    // Ring 0 keeps the plain sequence-id order so single-ring behaviour is
    // a strict subset; further rings get independent salted orders.
    ProfileFn profile;
    if (r > 0) {
      const std::uint64_t salt = mix64(0x52494E47ULL + r);  // "RING" + r
      profile = [&network, salt](NodeId n) {
        return mix64(network.seqId(n) ^ salt);
      };
    }
    rings_.push_back(std::make_unique<Vicinity>(network, transport, router,
                                                cyclon, params, seeder(),
                                                std::move(profile)));
  }
}

const Vicinity& MultiRing::ring(std::uint32_t r) const {
  VS07_EXPECT(r < rings_.size());
  return *rings_[r];
}

std::vector<RingNeighbors> MultiRing::allRingNeighbors(NodeId node) const {
  std::vector<RingNeighbors> result;
  result.reserve(rings_.size());
  for (const auto& ring : rings_) result.push_back(ring->ringNeighbors(node));
  return result;
}

void MultiRing::step(NodeId self) {
  for (auto& ring : rings_) ring->step(self);
}

void MultiRing::onShardedAttach(std::uint32_t shardCount) {
  for (auto& ring : rings_) ring->onShardedAttach(shardCount);
}

void MultiRing::shardStep(NodeId self, sim::ShardContext& ctx) {
  for (auto& ring : rings_) ring->shardStep(self, ctx);
}

bool MultiRing::shardDeliver(NodeId to, const net::Message& msg,
                             sim::ShardContext& ctx) {
  if (msg.kind != net::MessageKind::VicinityRequest &&
      msg.kind != net::MessageKind::VicinityReply)
    return false;
  if (msg.channel >= rings_.size()) return false;
  return rings_[msg.channel]->shardDeliver(to, msg, ctx);
}

void MultiRing::onJoin(NodeId node, NodeId introducer) {
  for (auto& ring : rings_) ring->onJoin(node, introducer);
}

}  // namespace vs07::gossip
