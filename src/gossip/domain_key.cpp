#include "gossip/domain_key.hpp"

#include <algorithm>
#include <vector>

namespace vs07::gossip {

std::string reverseDomain(std::string_view domain) {
  std::vector<std::string_view> labels;
  std::size_t start = 0;
  while (start <= domain.size()) {
    const auto dot = domain.find('.', start);
    const auto end = dot == std::string_view::npos ? domain.size() : dot;
    if (end > start) labels.push_back(domain.substr(start, end - start));
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  std::string out;
  out.reserve(domain.size());
  for (auto it = labels.rbegin(); it != labels.rend(); ++it) {
    if (!out.empty()) out.push_back('.');
    out.append(*it);
  }
  return out;
}

SequenceId domainSequenceId(std::string_view domain, std::uint32_t random) {
  const std::string reversed = reverseDomain(domain);
  std::uint64_t key = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    const std::uint8_t ch =
        i < reversed.size() ? static_cast<std::uint8_t>(reversed[i]) : 0;
    key = (key << 8) | ch;
  }
  return (key << 24) | (random & 0xFFFFFF);
}

std::string domainPrefixOf(SequenceId id) {
  std::string out;
  for (int i = 0; i < 5; ++i) {
    const auto ch =
        static_cast<char>((id >> (24 + 8 * (4 - i))) & 0xFF);
    if (ch == 0) break;
    out.push_back(ch);
  }
  return out;
}

}  // namespace vs07::gossip
