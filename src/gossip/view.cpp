#include "gossip/view.hpp"

namespace vs07::gossip {

void View::copyFrom(const View& other) {
  owner_ = other.owner_;
  size_ = other.size_;
  if (other.heap_) {
    // capacity_ still holds *this*'s old capacity here; reuse the existing
    // block only when it is exactly the right size.
    if (!heap_ || capacity_ != other.capacity_)
      heap_ = std::make_unique<PeerDescriptor[]>(other.capacity_);
    for (std::uint32_t i = 0; i < size_; ++i) heap_[i] = other.heap_[i];
  } else {
    heap_.reset();
    inline_ = other.inline_;
  }
  capacity_ = other.capacity_;
}

std::size_t View::indexOf(NodeId node) const noexcept {
  const PeerDescriptor* e = data();
  for (std::size_t i = 0; i < size_; ++i)
    if (e[i].node == node) return i;
  return npos;
}

std::size_t View::oldestIndex() const {
  VS07_EXPECT(size_ > 0);
  const PeerDescriptor* e = data();
  std::size_t best = 0;
  for (std::size_t i = 1; i < size_; ++i)
    if (e[i].age > e[best].age) best = i;
  return best;
}

void View::add(const PeerDescriptor& entry) {
  VS07_EXPECT(!full());
  VS07_EXPECT(entry.node != owner_);
  VS07_EXPECT(!contains(entry.node));
  data()[size_++] = entry;
}

void View::removeAt(std::size_t i) {
  VS07_EXPECT(i < size_);
  PeerDescriptor* e = data();
  e[i] = e[size_ - 1];
  --size_;
}

bool View::removeNode(NodeId node) {
  const auto i = indexOf(node);
  if (i == npos) return false;
  removeAt(i);
  return true;
}

void View::incrementAges() noexcept {
  PeerDescriptor* e = data();
  for (std::size_t i = 0; i < size_; ++i) ++e[i].age;
}

std::vector<PeerDescriptor> View::randomEntries(std::size_t count,
                                                NodeId exclude,
                                                Rng& rng) const {
  std::vector<PeerDescriptor> pool;
  pool.reserve(size_);
  randomEntriesInto(count, exclude, rng, pool);
  return pool;
}

void View::randomEntriesInto(std::size_t count, NodeId exclude, Rng& rng,
                             std::vector<PeerDescriptor>& out) const {
  out.clear();
  const PeerDescriptor* e = data();
  for (std::size_t i = 0; i < size_; ++i)
    if (e[i].node != exclude) out.push_back(e[i]);
  if (count < out.size()) {
    // Partial Fisher-Yates: the first `count` slots become the sample.
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t j = i + rng.below(out.size() - i);
      std::swap(out[i], out[j]);
    }
    out.resize(count);
  }
}

}  // namespace vs07::gossip
