#include "gossip/view.hpp"

namespace vs07::gossip {

std::size_t View::indexOf(NodeId node) const noexcept {
  for (std::size_t i = 0; i < entries_.size(); ++i)
    if (entries_[i].node == node) return i;
  return npos;
}

std::size_t View::oldestIndex() const {
  VS07_EXPECT(!entries_.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < entries_.size(); ++i)
    if (entries_[i].age > entries_[best].age) best = i;
  return best;
}

void View::add(const PeerDescriptor& entry) {
  VS07_EXPECT(!full());
  VS07_EXPECT(entry.node != owner_);
  VS07_EXPECT(!contains(entry.node));
  entries_.push_back(entry);
}

void View::removeAt(std::size_t i) {
  VS07_EXPECT(i < entries_.size());
  entries_[i] = entries_.back();
  entries_.pop_back();
}

bool View::removeNode(NodeId node) {
  const auto i = indexOf(node);
  if (i == npos) return false;
  removeAt(i);
  return true;
}

void View::incrementAges() noexcept {
  for (auto& e : entries_) ++e.age;
}

std::vector<PeerDescriptor> View::randomEntries(std::size_t count,
                                                NodeId exclude,
                                                Rng& rng) const {
  std::vector<PeerDescriptor> pool;
  pool.reserve(entries_.size());
  randomEntriesInto(count, exclude, rng, pool);
  return pool;
}

void View::randomEntriesInto(std::size_t count, NodeId exclude, Rng& rng,
                             std::vector<PeerDescriptor>& out) const {
  out.clear();
  for (const auto& e : entries_)
    if (e.node != exclude) out.push_back(e);
  if (count < out.size()) {
    // Partial Fisher-Yates: the first `count` slots become the sample.
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t j = i + rng.below(out.size() - i);
      std::swap(out[i], out[j]);
    }
    out.resize(count);
  }
}

}  // namespace vs07::gossip
