// The PEER SAMPLING SERVICE interface (Jelasity et al., Middleware 2004)
// as the paper uses it: a per-node, small, continuously refreshed random
// partial view. CYCLON is the instance RINGCAST/RANDCAST build on; tests
// also use a StaticSampler that serves a fixed view.
#pragma once

#include "gossip/view.hpp"
#include "net/node_id.hpp"

namespace vs07::gossip {

/// Read-side of a peer sampling protocol: the current partial view of any
/// node. (The write side — gossiping — is driven by the sim engine.)
class PeerSamplingService {
 public:
  virtual ~PeerSamplingService() = default;

  /// The node's current partial view of random peers.
  virtual const View& view(NodeId node) const = 0;

  /// One uniformly random peer from the node's view, or kNoNode if the
  /// view is empty.
  virtual NodeId samplePeer(NodeId node, Rng& rng) const;
};

}  // namespace vs07::gossip
