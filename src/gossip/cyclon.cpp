#include "gossip/cyclon.hpp"

#include <utility>

namespace vs07::gossip {

Cyclon::Cyclon(sim::Network& network, net::Transport& transport,
               sim::MessageRouter& router, Params params, std::uint64_t seed)
    : network_(network),
      transport_(transport),
      params_(params),
      rng_(seed) {
  VS07_EXPECT(params_.viewLength > 0);
  VS07_EXPECT(params_.shuffleLength > 0);
  VS07_EXPECT(params_.shuffleLength <= params_.viewLength);
  VS07_EXPECT(params_.shuffleLength <= 255);  // pendingCount_ is a byte
  router.route(net::MessageKind::CyclonRequest,
               [this](NodeId to, const net::Message& m) {
                 handleRequest(to, m);
               });
  router.route(net::MessageKind::CyclonReply,
               [this](NodeId to, const net::Message& m) {
                 handleReply(to, m);
               });
  network.addObserver(*this);  // sizes views_ via onSpawn callbacks
}

PeerDescriptor Cyclon::selfDescriptor(NodeId node) const {
  return PeerDescriptor{node, 0, network_.seqId(node)};
}

void Cyclon::onReserve(NodeId count) {
  views_.reserve(count);
  pendingSent_.reserve(std::size_t{count} * params_.shuffleLength);
  pendingCount_.reserve(count);
}

void Cyclon::onSpawn(NodeId node) {
  if (node >= views_.size()) {
    views_.resize(node + 1);
    pendingSent_.resize(std::size_t{node + 1} * params_.shuffleLength);
    pendingCount_.resize(node + 1, 0);
  }
  views_[node] = View(node, params_.viewLength);
}

void Cyclon::onKill(NodeId node) {
  // Keep the dead node's view allocated but inert; other nodes' links to
  // it stay dangling on purpose (the paper's dead-link semantics).
  views_[node].clear();
  pendingCount_[node] = 0;
}

void Cyclon::onJoin(NodeId node, NodeId introducer) {
  VS07_EXPECT(node != introducer);
  View& v = views_[node];
  v.clear();
  v.add(selfDescriptor(introducer));
}

void Cyclon::seedView(NodeId node, std::span<const NodeId> peers) {
  View& v = views_[node];
  v.clear();
  for (const NodeId peer : peers) {
    if (v.full()) break;
    if (peer == node || v.contains(peer)) continue;
    v.add(selfDescriptor(peer));
  }
}

void Cyclon::admit(NodeId self, NodeId peer) {
  VS07_EXPECT(peer != self);
  View& v = views_[self];
  if (v.contains(peer)) return;  // known already; its age keeps counting
  if (v.full()) v.removeAt(v.oldestIndex());
  v.add(selfDescriptor(peer));
}

const View& Cyclon::view(NodeId node) const {
  VS07_EXPECT(node < views_.size());
  return views_[node];
}

void Cyclon::step(NodeId self) {
  stepImpl(self, rng_, transport_, requestScratch_, sampleScratch_,
           shuffles_);
}

void Cyclon::stepImpl(NodeId self, Rng& rng, net::Transport& transport,
                      net::Message& requestScratch,
                      std::vector<PeerDescriptor>& sampleScratch,
                      std::uint64_t& shuffleCounter) {
  View& v = views_[self];
  v.incrementAges();
  if (v.empty()) return;  // isolated node: nothing to shuffle with

  // 2. Oldest neighbour becomes the exchange partner and leaves the view.
  const std::size_t qIndex = v.oldestIndex();
  const NodeId q = v.at(qIndex).node;
  v.removeAt(qIndex);

  // 3. Random subset of g-1 other entries, plus a fresh self-descriptor.
  // The sample is staged in `sampleScratch` — randomEntriesInto copies
  // the whole view before the partial shuffle, and a message buffer that
  // briefly held viewLength entries keeps that capacity in whichever
  // outbox slot it circulates into (a per-slot cost at scale).
  net::Message& request = requestScratch;
  request.reset();
  v.randomEntriesInto(params_.shuffleLength - 1, /*exclude=*/q, rng,
                      sampleScratch);
  request.entries.assign(sampleScratch.begin(), sampleScratch.end());
  NodeId* sent = &pendingSent_[std::size_t{self} * params_.shuffleLength];
  std::uint8_t sentCount = 0;
  for (const auto& e : request.entries) sent[sentCount++] = e.node;
  pendingCount_[self] = sentCount;
  request.entries.push_back(selfDescriptor(self));

  request.kind = net::MessageKind::CyclonRequest;
  request.from = self;
  ++shuffleCounter;
  transport.send(q, std::move(request));
  // If q is dead or the message is lost, no reply ever comes back:
  // the oldest entry is already gone and pendingSent_ is simply
  // overwritten by the next shuffle. That *is* CYCLON's failure handling.
}

void Cyclon::handleRequest(NodeId self, const net::Message& msg) {
  handleRequestImpl(self, msg, rng_, transport_, replyScratch_,
                    sampleScratch_, replySentScratch_);
}

void Cyclon::handleRequestImpl(NodeId self, const net::Message& msg, Rng& rng,
                               net::Transport& transport,
                               net::Message& replyScratch,
                               std::vector<PeerDescriptor>& sampleScratch,
                               std::vector<NodeId>& sentScratch) {
  View& v = views_[self];
  // Reply with up to g random entries (excluding any entry for the
  // initiator: it would be discarded at the other end anyway). Staged in
  // scratch for the same slot-capacity reason as stepImpl.
  net::Message& reply = replyScratch;
  reply.reset();
  v.randomEntriesInto(params_.shuffleLength, /*exclude=*/msg.from, rng,
                      sampleScratch);
  reply.entries.assign(sampleScratch.begin(), sampleScratch.end());
  auto& sentIds = sentScratch;
  sentIds.clear();
  for (const auto& e : reply.entries) sentIds.push_back(e.node);

  reply.kind = net::MessageKind::CyclonReply;
  reply.from = self;
  transport.send(msg.from, std::move(reply));

  std::size_t live = sentIds.size();
  merge(self, msg.entries, sentIds, live);
}

void Cyclon::onShardedAttach(std::uint32_t shardCount) {
  shardShuffles_.assign(shardCount, 0);
}

void Cyclon::shardStep(NodeId self, sim::ShardContext& ctx) {
  stepImpl(self, ctx.rng(), ctx.transport(), ctx.messageScratch(),
           ctx.poolScratch(), shardShuffles_[ctx.shard()]);
}

bool Cyclon::shardDeliver(NodeId to, const net::Message& msg,
                          sim::ShardContext& ctx) {
  switch (msg.kind) {
    case net::MessageKind::CyclonRequest:
      handleRequestImpl(to, msg, ctx.rng(), ctx.transport(),
                        ctx.messageScratch(), ctx.poolScratch(),
                        ctx.idScratch());
      return true;
    case net::MessageKind::CyclonReply:
      handleReply(to, msg);
      return true;
    default:
      return false;
  }
}

std::uint64_t Cyclon::shufflesInitiated() const noexcept {
  std::uint64_t total = shuffles_;
  for (const auto count : shardShuffles_) total += count;
  return total;
}

void Cyclon::handleReply(NodeId self, const net::Message& msg) {
  std::size_t live = pendingCount_[self];
  merge(self, msg.entries,
        {&pendingSent_[std::size_t{self} * params_.shuffleLength],
         params_.shuffleLength},
        live);
  pendingCount_[self] = 0;
}

void Cyclon::merge(NodeId self, std::span<const PeerDescriptor> received,
                   std::span<const NodeId> sentIds, std::size_t& liveCount) {
  View& v = views_[self];
  for (const auto& entry : received) {
    if (entry.node == self) continue;        // descriptor of ourselves
    if (v.contains(entry.node)) continue;    // duplicate: keep existing
    if (!v.full()) {
      v.add(entry);
      continue;
    }
    // Replace one of the entries we sent out, if any is still present.
    bool placed = false;
    while (liveCount > 0 && !placed) {
      const NodeId victim = sentIds[--liveCount];
      if (v.removeNode(victim)) {
        v.add(entry);
        placed = true;
      }
    }
    // View full and nothing left to sacrifice: drop the entry.
  }
}

}  // namespace vs07::gossip
