#include "gossip/cyclon.hpp"

#include <utility>

namespace vs07::gossip {

Cyclon::Cyclon(sim::Network& network, net::Transport& transport,
               sim::MessageRouter& router, Params params, std::uint64_t seed)
    : network_(network),
      transport_(transport),
      params_(params),
      rng_(seed) {
  VS07_EXPECT(params_.viewLength > 0);
  VS07_EXPECT(params_.shuffleLength > 0);
  VS07_EXPECT(params_.shuffleLength <= params_.viewLength);
  router.route(net::MessageKind::CyclonRequest,
               [this](NodeId to, const net::Message& m) {
                 handleRequest(to, m);
               });
  router.route(net::MessageKind::CyclonReply,
               [this](NodeId to, const net::Message& m) {
                 handleReply(to, m);
               });
  network.addObserver(*this);  // sizes views_ via onSpawn callbacks
}

PeerDescriptor Cyclon::selfDescriptor(NodeId node) const {
  return PeerDescriptor{node, 0, network_.seqId(node)};
}

void Cyclon::onSpawn(NodeId node) {
  if (node >= views_.size()) {
    views_.resize(node + 1);
    pendingSent_.resize(node + 1);
  }
  views_[node] = View(node, params_.viewLength);
}

void Cyclon::onKill(NodeId node) {
  // Keep the dead node's view allocated but inert; other nodes' links to
  // it stay dangling on purpose (the paper's dead-link semantics).
  views_[node].clear();
  pendingSent_[node].clear();
}

void Cyclon::onJoin(NodeId node, NodeId introducer) {
  VS07_EXPECT(node != introducer);
  View& v = views_[node];
  v.clear();
  v.add(selfDescriptor(introducer));
}

void Cyclon::seedView(NodeId node, std::span<const NodeId> peers) {
  View& v = views_[node];
  v.clear();
  for (const NodeId peer : peers) {
    if (v.full()) break;
    if (peer == node || v.contains(peer)) continue;
    v.add(selfDescriptor(peer));
  }
}

void Cyclon::admit(NodeId self, NodeId peer) {
  VS07_EXPECT(peer != self);
  View& v = views_[self];
  if (v.contains(peer)) return;  // known already; its age keeps counting
  if (v.full()) v.removeAt(v.oldestIndex());
  v.add(selfDescriptor(peer));
}

const View& Cyclon::view(NodeId node) const {
  VS07_EXPECT(node < views_.size());
  return views_[node];
}

void Cyclon::step(NodeId self) {
  View& v = views_[self];
  v.incrementAges();
  if (v.empty()) return;  // isolated node: nothing to shuffle with

  // 2. Oldest neighbour becomes the exchange partner and leaves the view.
  const std::size_t qIndex = v.oldestIndex();
  const NodeId q = v.at(qIndex).node;
  v.removeAt(qIndex);

  // 3. Random subset of g-1 other entries, plus a fresh self-descriptor.
  net::Message& request = requestScratch_;
  request.reset();
  v.randomEntriesInto(params_.shuffleLength - 1, /*exclude=*/q, rng_,
                      request.entries);
  auto& sent = pendingSent_[self];
  sent.clear();
  for (const auto& e : request.entries) sent.push_back(e.node);
  request.entries.push_back(selfDescriptor(self));

  request.kind = net::MessageKind::CyclonRequest;
  request.from = self;
  ++shuffles_;
  transport_.send(q, std::move(request));
  // If q is dead or the message is lost, no reply ever comes back:
  // the oldest entry is already gone and pendingSent_ is simply
  // overwritten by the next shuffle. That *is* CYCLON's failure handling.
}

void Cyclon::handleRequest(NodeId self, const net::Message& msg) {
  View& v = views_[self];
  // Reply with up to g random entries (excluding any entry for the
  // initiator: it would be discarded at the other end anyway).
  net::Message& reply = replyScratch_;
  reply.reset();
  v.randomEntriesInto(params_.shuffleLength, /*exclude=*/msg.from, rng_,
                      reply.entries);
  auto& sentIds = replySentScratch_;
  sentIds.clear();
  for (const auto& e : reply.entries) sentIds.push_back(e.node);

  reply.kind = net::MessageKind::CyclonReply;
  reply.from = self;
  transport_.send(msg.from, std::move(reply));

  merge(self, msg.entries, sentIds);
}

void Cyclon::handleReply(NodeId self, const net::Message& msg) {
  merge(self, msg.entries, pendingSent_[self]);
  pendingSent_[self].clear();
}

void Cyclon::merge(NodeId self, std::span<const PeerDescriptor> received,
                   std::vector<NodeId>& sentIds) {
  View& v = views_[self];
  for (const auto& entry : received) {
    if (entry.node == self) continue;        // descriptor of ourselves
    if (v.contains(entry.node)) continue;    // duplicate: keep existing
    if (!v.full()) {
      v.add(entry);
      continue;
    }
    // Replace one of the entries we sent out, if any is still present.
    bool placed = false;
    while (!sentIds.empty() && !placed) {
      const NodeId victim = sentIds.back();
      sentIds.pop_back();
      if (v.removeNode(victim)) {
        v.add(entry);
        placed = true;
      }
    }
    // View full and nothing left to sacrifice: drop the entry.
  }
}

}  // namespace vs07::gossip
