#include "gossip/peer_sampling.hpp"

namespace vs07::gossip {

NodeId PeerSamplingService::samplePeer(NodeId node, Rng& rng) const {
  const View& v = view(node);
  if (v.empty()) return kNoNode;
  return v.at(rng.below(v.size())).node;
}

}  // namespace vs07::gossip
