// Quickstart: build a RINGCAST system, let it self-organise, and
// disseminate a message — the complete public-API tour.
//
//   $ ./quickstart [--nodes 1000]
//
// Steps:
//   1. Scenario::builder() wires network + CYCLON (r-links) + VICINITY
//      (d-links) and runs the paper's star bootstrap + 100 warm-up cycles.
//   2. snapshotSession() freezes the overlay; publish() multicasts.
//   3. The same DeliveryReport API compares RANDCAST on the same network.
#include <cstdio>

#include "analysis/graph_analysis.hpp"
#include "analysis/scenario.hpp"
#include "common/cli.hpp"

using namespace vs07;
using cast::Strategy;

int main(int argc, char** argv) {
  CliParser parser("RingCast quickstart: one dissemination, step by step.");
  parser.option("nodes", "population size (default 1000)");
  const auto args = parser.parseOrExit(argc, argv);
  if (!args) return 0;
  const auto nodes = static_cast<std::uint32_t>(args->getUint("nodes", 1000));

  // 1. One builder call wires and self-organises the whole system: every
  //    node runs CYCLON (random partial view) and VICINITY (converges its
  //    view to the ring neighbours).
  std::printf("self-organising %u nodes from a star topology...\n", nodes);
  auto scenario =  // seed 2007: Middleware 2007
      analysis::Scenario::builder().nodes(nodes).seed(2007).build();

  const auto convergence =
      analysis::ringConvergence(scenario.network(), scenario.vicinity());
  std::printf("ring converged: %.1f%% of nodes know both true neighbours\n",
              100.0 * convergence.bothAccuracy);

  // 2. Freeze the overlay and disseminate from node 0 with fanout 3:
  //    each node forwards to its 2 ring neighbours + 1 random peer.
  auto ringCast = scenario.snapshotSession(
      {.strategy = Strategy::kRingCast, .fanout = 3, .seed = 1});
  const auto report = ringCast.publish(/*origin=*/0);

  std::printf("\ndissemination from node 0 (fanout %u):\n", report.fanout);
  std::printf("  notified  : %llu / %llu nodes (miss ratio %.4f%%)\n",
              static_cast<unsigned long long>(report.notified),
              static_cast<unsigned long long>(report.aliveTotal),
              report.missRatioPercent());
  std::printf("  complete  : %s\n", report.complete() ? "yes" : "no");
  std::printf("  last hop  : %u\n", report.lastHop);
  std::printf("  messages  : %llu total = %llu virgin + %llu redundant\n",
              static_cast<unsigned long long>(report.messagesTotal),
              static_cast<unsigned long long>(report.messagesVirgin),
              static_cast<unsigned long long>(report.messagesRedundant));

  std::printf("\nper-hop coverage:\n");
  for (std::size_t hop = 0; hop < report.newlyNotifiedPerHop.size(); ++hop)
    std::printf("  hop %2zu: +%llu nodes (%.2f%% still unreached)\n", hop,
                static_cast<unsigned long long>(
                    report.newlyNotifiedPerHop[hop]),
                report.percentNotReachedAfterHop(
                    static_cast<std::uint32_t>(hop)));

  // 3. Contrast with pure RANDCAST at the same fanout on the same network.
  auto randCast = scenario.snapshotSession(
      {.strategy = Strategy::kRandCast, .fanout = 3, .seed = 1});
  const auto randReport = randCast.publish(0);
  std::printf(
      "\nfor comparison, RandCast at the same fanout missed %llu nodes "
      "(%.4f%%).\n",
      static_cast<unsigned long long>(randReport.missed.size()),
      randReport.missRatioPercent());
  return 0;
}
