// Quickstart: build a RINGCAST system, let it self-organise, and
// disseminate a message — the complete public-API tour in ~60 lines of
// application code.
//
//   $ ./quickstart [--nodes 1000]
//
// Steps:
//   1. ProtocolStack wires network + CYCLON (r-links) + VICINITY (d-links).
//   2. warmup() bootstraps a star and runs 100 gossip cycles.
//   3. snapshotRing() freezes the overlay; disseminate() multicasts.
#include <cstdio>

#include "analysis/graph_analysis.hpp"
#include "analysis/stack.hpp"
#include "cast/disseminator.hpp"
#include "cast/selector.hpp"
#include "common/cli.hpp"

using namespace vs07;

int main(int argc, char** argv) {
  CliParser parser("RingCast quickstart: one dissemination, step by step.");
  parser.option("nodes", "population size (default 1000)");
  const auto args = parser.parse(argc, argv);
  if (!args) return 0;

  // 1. Build the stack: every node runs CYCLON (random partial view) and
  //    VICINITY (converges its view to the ring neighbours).
  analysis::StackConfig config;
  config.nodes = static_cast<std::uint32_t>(args->getUint("nodes", 1000));
  config.seed = 2007;  // Middleware 2007
  analysis::ProtocolStack stack(config);

  // 2. Self-organise: star bootstrap, then 100 cycles of gossip.
  std::printf("self-organising %u nodes from a star topology...\n",
              config.nodes);
  stack.warmup();

  const auto convergence =
      analysis::ringConvergence(stack.network(), stack.vicinity());
  std::printf("ring converged: %.1f%% of nodes know both true neighbours\n",
              100.0 * convergence.bothAccuracy);

  // 3. Freeze the overlay and disseminate from node 0 with fanout 3:
  //    each node forwards to its 2 ring neighbours + 1 random peer.
  const auto overlay = stack.snapshotRing();
  const cast::RingCastSelector ringCast;
  cast::DisseminationParams params;
  params.fanout = 3;
  params.seed = 1;
  const auto report = cast::disseminate(overlay, ringCast, /*origin=*/0,
                                        params);

  std::printf("\ndissemination from node 0 (fanout %u):\n", params.fanout);
  std::printf("  notified  : %llu / %llu nodes (miss ratio %.4f%%)\n",
              static_cast<unsigned long long>(report.notified),
              static_cast<unsigned long long>(report.aliveTotal),
              report.missRatioPercent());
  std::printf("  complete  : %s\n", report.complete() ? "yes" : "no");
  std::printf("  last hop  : %u\n", report.lastHop);
  std::printf("  messages  : %llu total = %llu virgin + %llu redundant\n",
              static_cast<unsigned long long>(report.messagesTotal),
              static_cast<unsigned long long>(report.messagesVirgin),
              static_cast<unsigned long long>(report.messagesRedundant));

  std::printf("\nper-hop coverage:\n");
  for (std::size_t hop = 0; hop < report.newlyNotifiedPerHop.size(); ++hop)
    std::printf("  hop %2zu: +%llu nodes (%.2f%% still unreached)\n", hop,
                static_cast<unsigned long long>(
                    report.newlyNotifiedPerHop[hop]),
                report.percentNotReachedAfterHop(
                    static_cast<std::uint32_t>(hop)));

  // Contrast with pure RANDCAST at the same fanout on the same network.
  const cast::RandCastSelector randCast;
  const auto randReport = cast::disseminate(stack.snapshotRandom(), randCast,
                                            0, params);
  std::printf(
      "\nfor comparison, RandCast at the same fanout missed %llu nodes "
      "(%.4f%%).\n",
      static_cast<unsigned long long>(randReport.missed.size()),
      randReport.missRatioPercent());
  return 0;
}
