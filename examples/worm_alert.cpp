// Worm-alert scenario — the paper's introduction motivates dissemination
// with "world-wide worm alert notifications": an alert must reach every
// node fast, even while the network itself is degrading.
//
// Here a worm knocks out a growing fraction of the population between
// alert waves (gossip stalled — routers are melting, nobody is healing
// views), and we compare how RANDCAST and RINGCAST keep delivering the
// alert as damage mounts.
//
//   $ ./worm_alert [--nodes 2000] [--fanout 3]
#include <cstdio>

#include "analysis/experiment.hpp"
#include "analysis/scenario.hpp"
#include "common/cli.hpp"

using namespace vs07;
using cast::Strategy;

int main(int argc, char** argv) {
  CliParser parser(
      "Worm-alert scenario: alert dissemination while the network "
      "degrades, no time to self-heal.");
  parser.option("nodes", "population size (default 2000)")
      .option("fanout", "alert fanout (default 3)");
  const auto args = parser.parseOrExit(argc, argv);
  if (!args) return 0;

  const auto nodes =
      static_cast<std::uint32_t>(args->getUint("nodes", 2000));
  const auto fanout =
      static_cast<std::uint32_t>(args->getUint("fanout", 3));
  constexpr std::uint32_t kAlerts = 20;

  std::printf("deploying %u sensor nodes...\n", nodes);
  auto scenario = analysis::Scenario::paperStatic(nodes, /*seed=*/1337);

  Rng rng(99);
  std::printf(
      "\nworm spreading; alert waves at increasing damage (fanout %u):\n\n"
      "%-12s %-10s %-22s %-22s\n",
      fanout, "dead nodes", "alive", "RandCast avg miss %",
      "RingCast avg miss %");

  double cumulativeKill = 0.0;
  for (const double killStep : {0.0, 0.01, 0.02, 0.02, 0.05, 0.10}) {
    if (killStep > 0.0) {
      scenario.killRandomFraction(killStep);
      cumulativeKill += killStep;
    }
    // Freeze the damaged overlay: the worm outpaces view repair.
    const auto randMiss = analysis::measureEffectiveness(
        scenario, Strategy::kRandCast, fanout, kAlerts, rng());
    const auto ringMiss = analysis::measureEffectiveness(
        scenario, Strategy::kRingCast, fanout, kAlerts, rng());
    std::printf("%-12.0f %-10u %-22.4f %-22.4f\n", cumulativeKill * 100.0,
                scenario.network().aliveCount(), randMiss.avgMissPercent,
                ringMiss.avgMissPercent);
  }

  std::printf(
      "\nRingCast's deterministic ring links keep the alert flowing "
      "around the damage; RandCast's random forwards leave islands "
      "unwarned.\n"
      "Once the worm is contained, gossip resumes and the ring self-heals "
      "(see tests/gossip/vicinity_test.cpp, SelfHealsAfterCatastrophicFailure).\n");
  return 0;
}
