// Worm-alert scenario — the paper's introduction motivates dissemination
// with "world-wide worm alert notifications": an alert must reach every
// node fast, even while the network itself is degrading.
//
// Here a worm knocks out a growing fraction of the population between
// alert waves (gossip stalled — routers are melting, nobody is healing
// views), and we compare how RANDCAST and RINGCAST keep delivering the
// alert as damage mounts.
//
//   $ ./worm_alert [--nodes 2000] [--fanout 3]
#include <cstdio>

#include "analysis/stack.hpp"
#include "cast/disseminator.hpp"
#include "cast/selector.hpp"
#include "common/cli.hpp"
#include "sim/failures.hpp"

using namespace vs07;

namespace {

double averageMissPercent(const cast::OverlaySnapshot& overlay,
                          const cast::TargetSelector& selector,
                          std::uint32_t fanout, Rng& rng) {
  constexpr int kAlerts = 20;
  double missSum = 0.0;
  for (int alert = 0; alert < kAlerts; ++alert) {
    const NodeId origin =
        overlay.aliveIds()[rng.below(overlay.aliveIds().size())];
    cast::DisseminationParams params;
    params.fanout = fanout;
    params.seed = rng();
    missSum +=
        cast::disseminate(overlay, selector, origin, params).missRatioPercent();
  }
  return missSum / kAlerts;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser parser(
      "Worm-alert scenario: alert dissemination while the network "
      "degrades, no time to self-heal.");
  parser.option("nodes", "population size (default 2000)")
      .option("fanout", "alert fanout (default 3)");
  const auto args = parser.parse(argc, argv);
  if (!args) return 0;

  analysis::StackConfig config;
  config.nodes = static_cast<std::uint32_t>(args->getUint("nodes", 2000));
  config.seed = 1337;
  const auto fanout =
      static_cast<std::uint32_t>(args->getUint("fanout", 3));

  std::printf("deploying %u sensor nodes...\n", config.nodes);
  analysis::ProtocolStack stack(config);
  stack.warmup();

  const cast::RandCastSelector randCast;
  const cast::RingCastSelector ringCast;
  Rng rng(99);

  std::printf(
      "\nworm spreading; alert waves at increasing damage (fanout %u):\n\n"
      "%-12s %-10s %-22s %-22s\n",
      fanout, "dead nodes", "alive", "RandCast avg miss %",
      "RingCast avg miss %");

  double cumulativeKill = 0.0;
  for (const double killStep : {0.0, 0.01, 0.02, 0.02, 0.05, 0.10}) {
    if (killStep > 0.0) {
      Rng killRng(rng());
      sim::killRandomFraction(stack.network(), killStep, killRng);
      cumulativeKill += killStep;
    }
    // Freeze the damaged overlay: the worm outpaces view repair.
    const auto randMiss = averageMissPercent(stack.snapshotRandom(), randCast,
                                             fanout, rng);
    const auto ringMiss = averageMissPercent(stack.snapshotRing(), ringCast,
                                             fanout, rng);
    std::printf("%-12.0f %-10u %-22.4f %-22.4f\n", cumulativeKill * 100.0,
                stack.network().aliveCount(), randMiss, ringMiss);
  }

  std::printf(
      "\nRingCast's deterministic ring links keep the alert flowing "
      "around the damage; RandCast's random forwards leave islands "
      "unwarned.\n"
      "Once the worm is contained, gossip resumes and the ring self-heals "
      "(see tests/gossip/vicinity_test.cpp, SelfHealsAfterCatastrophicFailure).\n");
  return 0;
}
