// Topic-based publish/subscribe — the §8 application: "each topic forms
// its own, separate dissemination overlay; events are multicast by
// disseminating them in the appropriate overlay."
//
// A news network: nodes subscribe to interest topics; publishers emit
// events per topic; delivery is complete within each topic and zero
// outside it.
//
//   $ ./pubsub_events [--nodes 400]
#include <cstdio>
#include <string>
#include <vector>

#include "cast/strategy.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "pubsub/topic.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"

using namespace vs07;

int main(int argc, char** argv) {
  CliParser parser("Topic-based pub/sub over per-topic RingCast overlays.");
  parser.option("nodes", "population size (default 400)");
  const auto args = parser.parseOrExit(argc, argv);
  if (!args) return 0;

  const auto nodes =
      static_cast<std::uint32_t>(args->getUint("nodes", 400));
  sim::Network network(nodes, 11);
  pubsub::PubSub pubsub(network, 12);

  // Interest profile: everyone follows "breaking"; halves follow sports
  // or markets; a tenth follows weather.
  auto& breaking = pubsub.topic("breaking");
  auto& sports = pubsub.topic("sports");
  auto& markets = pubsub.topic("markets");
  auto& weather = pubsub.topic("weather");
  Rng rng(13);
  for (NodeId id = 0; id < nodes; ++id) {
    breaking.subscribe(id);
    if (rng.chance(0.5)) sports.subscribe(id);
    if (rng.chance(0.5)) markets.subscribe(id);
    if (rng.chance(0.1)) weather.subscribe(id);
  }

  // One engine drives every topic's gossip (shared cycles, §6 style).
  sim::Engine engine(network, 14);
  engine.addProtocol(pubsub);
  engine.run(100);

  std::printf("%-10s %-12s %-10s %-10s %-9s %-8s\n", "topic",
              "subscribers", "notified", "complete", "last-hop", "msgs");
  for (const auto& name : pubsub.topicNames()) {
    auto& topic = pubsub.topic(name);
    // Publish from the lowest-id subscriber.
    NodeId origin = kNoNode;
    for (NodeId id = 0; id < nodes && origin == kNoNode; ++id)
      if (topic.isSubscribed(id)) origin = id;
    const auto report = topic.publish(origin, cast::Strategy::kRingCast,
                                      /*fanout=*/3, /*seed=*/rng());
    std::printf("%-10s %-12u %-10llu %-10s %-9u %-8llu\n", name.c_str(),
                topic.subscriberCount(),
                static_cast<unsigned long long>(report.notified),
                report.complete() ? "yes" : "NO", report.lastHop,
                static_cast<unsigned long long>(report.messagesTotal));
  }

  // Interest changes: a quarter of sports followers drop the topic; the
  // overlay shrinks and stays complete for the remaining subscribers.
  std::printf("\n25%% of sports followers unsubscribe...\n");
  std::vector<NodeId> leavers;
  for (NodeId id = 0; id < nodes; ++id)
    if (sports.isSubscribed(id) && rng.chance(0.25)) leavers.push_back(id);
  for (const NodeId id : leavers) sports.unsubscribe(id);
  engine.run(60);  // let the views heal

  NodeId origin = kNoNode;
  for (NodeId id = 0; id < nodes && origin == kNoNode; ++id)
    if (sports.isSubscribed(id)) origin = id;
  const auto report =
      sports.publish(origin, cast::Strategy::kRingCast, 3, rng());
  std::printf(
      "sports now has %u subscribers; next event reached %llu (%s)\n",
      sports.subscriberCount(),
      static_cast<unsigned long long>(report.notified),
      report.complete() ? "complete" : "incomplete");
  return 0;
}
