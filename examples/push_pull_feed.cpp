// Live news feed with push + pull — the §8 future-work pipeline end to
// end: a publisher keeps emitting items while the network suffers a
// partial outage; push delivers instantly to almost everyone, and the
// anti-entropy pull layer quietly backfills whoever the push wave missed.
//
//   $ ./push_pull_feed [--nodes 1000]
#include <cstdio>
#include <vector>

#include "analysis/scenario.hpp"
#include "common/cli.hpp"

using namespace vs07;
using cast::Strategy;

int main(int argc, char** argv) {
  CliParser parser("Live push+pull feed (paper §8 future work).");
  parser.option("nodes", "population size (default 1000)");
  const auto args = parser.parseOrExit(argc, argv);
  if (!args) return 0;
  const auto nodes =
      static_cast<std::uint32_t>(args->getUint("nodes", 1000));

  // A warmed-up scenario plus one live push+pull session: fanout 2 keeps
  // push redundancy deliberately minimal, anti-entropy runs every cycle.
  auto scenario = analysis::Scenario::paperStatic(nodes, /*seed=*/61);
  auto& feed = scenario.liveSession(
      {.strategy = Strategy::kPushPull, .fanout = 2, .pullInterval = 1});
  std::printf("feed network of %u nodes ready (fanout %u, pull every "
              "cycle)\n\n",
              nodes, feed.options().fanout);

  std::printf("%-6s %-10s %-14s %-14s %-12s\n", "item", "alive",
              "miss% at push", "miss% +2 cyc", "pull deliveries");
  Rng rng(66);
  std::vector<std::uint64_t> items;
  for (int item = 1; item <= 8; ++item) {
    // Item 4 coincides with a sudden outage of 15% of the network; the
    // overlay gets no healing time before the push (worst case, §7.2).
    if (item == 4) {
      scenario.killRandomFraction(0.15);
      std::printf("  -- outage: 15%% of nodes fail --\n");
    }
    const NodeId origin = scenario.network().randomAlive(rng);
    const auto pushReport = feed.publish(origin);
    const auto id = feed.lastDataId();
    items.push_back(id);
    scenario.runCycles(2);
    const auto settled = feed.report(id);
    std::printf("%-6d %-10u %-14.3f %-14.3f %-12llu\n", item,
                scenario.network().aliveCount(),
                pushReport.missRatioPercent(), settled.missRatioPercent(),
                static_cast<unsigned long long>(settled.pullDelivered));
  }

  scenario.runCycles(5);
  std::printf("\nfinal state after 5 more cycles:\n");
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto report = feed.report(items[i]);
    std::printf("  item %zu: miss %.4f%%, %llu of %llu deliveries via pull\n",
                i + 1, report.missRatioPercent(),
                static_cast<unsigned long long>(report.pullDelivered),
                static_cast<unsigned long long>(report.notified));
  }
  std::printf(
      "\npush does the bulk instantly; pull erases the misses the outage "
      "caused — the reliability improvement the paper's §8 anticipates.\n");
  return 0;
}
