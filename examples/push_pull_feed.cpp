// Live news feed with push + pull — the §8 future-work pipeline end to
// end: a publisher keeps emitting items while the network suffers a
// partial outage; push delivers instantly to almost everyone, and the
// anti-entropy pull layer quietly backfills whoever the push wave missed.
//
//   $ ./push_pull_feed [--nodes 1000]
#include <cstdio>
#include <vector>

#include "cast/live.hpp"
#include "common/cli.hpp"
#include "gossip/cyclon.hpp"
#include "gossip/vicinity.hpp"
#include "net/transport.hpp"
#include "sim/bootstrap.hpp"
#include "sim/engine.hpp"
#include "sim/failures.hpp"
#include "sim/network.hpp"
#include "sim/router.hpp"

using namespace vs07;

int main(int argc, char** argv) {
  CliParser parser("Live push+pull feed (paper §8 future work).");
  parser.option("nodes", "population size (default 1000)");
  const auto args = parser.parse(argc, argv);
  if (!args) return 0;
  const auto nodes =
      static_cast<std::uint32_t>(args->getUint("nodes", 1000));

  sim::Network network(nodes, 61);
  sim::MessageRouter router(network);
  net::ImmediateTransport transport(
      [&router](NodeId to, const net::Message& m) { router.deliver(to, m); });
  gossip::Cyclon cyclon(network, transport, router, {20, 8}, 62);
  gossip::Vicinity vicinity(network, transport, router, cyclon, {}, 63);

  cast::LiveCast::Params liveParams;
  liveParams.fanout = 2;        // deliberately minimal push redundancy
  liveParams.pullInterval = 1;  // anti-entropy every cycle
  cast::LiveCast live(network, transport, router, cyclon, &vicinity,
                      liveParams, 64);

  sim::Engine engine(network, 65);
  engine.addProtocol(cyclon);
  engine.addProtocol(vicinity);
  engine.addProtocol(live);
  sim::bootstrapStar(network, cyclon);
  engine.run(100);
  std::printf("feed network of %u nodes ready (fanout %u, pull every "
              "cycle)\n\n",
              nodes, liveParams.fanout);

  std::printf("%-6s %-10s %-14s %-14s %-12s\n", "item", "alive",
              "miss% at push", "miss% +2 cyc", "pull deliveries");
  Rng rng(66);
  std::vector<std::uint64_t> items;
  for (int item = 1; item <= 8; ++item) {
    // Item 4 coincides with a sudden outage of 15% of the network; the
    // overlay gets no healing time before the push (worst case, §7.2).
    if (item == 4) {
      Rng killRng(67);
      sim::killRandomFraction(network, 0.15, killRng);
      std::printf("  -- outage: 15%% of nodes fail --\n");
    }
    const NodeId origin = network.randomAlive(rng);
    const auto id = live.publish(origin);
    items.push_back(id);
    const double missAtPush = live.missRatioPercentNow(id);
    engine.run(2);
    std::printf("%-6d %-10u %-14.3f %-14.3f %-12llu\n", item,
                network.aliveCount(), missAtPush,
                live.missRatioPercentNow(id),
                static_cast<unsigned long long>(
                    live.stats(id).pullDelivered));
  }

  engine.run(5);
  std::printf("\nfinal state after 5 more cycles:\n");
  for (std::size_t i = 0; i < items.size(); ++i)
    std::printf("  item %zu: miss %.4f%%, %llu of %llu deliveries via pull\n",
                i + 1, live.missRatioPercentNow(items[i]),
                static_cast<unsigned long long>(
                    live.stats(items[i]).pullDelivered),
                static_cast<unsigned long long>(
                    live.stats(items[i]).delivered()));
  std::printf(
      "\npush does the bulk instantly; pull erases the misses the outage "
      "caused — the reliability improvement the paper's §8 anticipates.\n");
  return 0;
}
