// Software-update scenario — "massive distribution of software and
// security patches" (paper introduction) on a network with continuous
// churn: machines come and go while the vendor pushes updates.
//
// The example runs the paper's §7.3 pipeline end to end: churn warm-up
// until the entire original population has been replaced, then a series
// of update pushes, reporting which machines missed an update and how
// old they were — reproducing the Fig. 13 insight that only fresh
// joiners are at risk, and quantifying the warm-up age after which
// delivery is near-certain.
//
//   $ ./software_update [--nodes 800] [--churn 0.005]
#include <cstdio>

#include "analysis/experiment.hpp"
#include "analysis/scenario.hpp"
#include "common/cli.hpp"
#include "common/histogram.hpp"

using namespace vs07;
using cast::Strategy;

int main(int argc, char** argv) {
  CliParser parser(
      "Software-update scenario: update pushes over a churning "
      "population; who misses updates, and how old are they?");
  parser.option("nodes", "population size (default 800)")
      .option("churn", "churn rate per cycle (default 0.005)")
      .option("pushes", "number of update pushes (default 50)");
  const auto args = parser.parseOrExit(argc, argv);
  if (!args) return 0;

  const auto nodes =
      static_cast<std::uint32_t>(args->getUint("nodes", 800));
  const double churnRate = args->getDouble("churn", 0.005);
  const auto pushes =
      static_cast<std::uint32_t>(args->getUint("pushes", 50));

  std::printf("fleet of %u machines; churn %.2f%%/cycle\n", nodes,
              churnRate * 100.0);
  std::printf("running churn until the original fleet is fully replaced");
  auto scenario = analysis::Scenario::paperChurn(churnRate, nodes,
                                                 /*seed=*/20070101,
                                                 /*maxChurnCycles=*/100'000);
  std::printf(" ... %llu cycles\n\n",
              static_cast<unsigned long long>(scenario.churnCycles()));

  // Push `pushes` updates from random origins and classify the misses.
  const auto study = analysis::measureMissLifetimes(
      scenario, Strategy::kRingCast, /*fanout=*/3, pushes, /*seed=*/7);

  std::printf("pushed %u updates at fanout 3 over %u machines:\n", pushes,
              scenario.network().aliveCount());
  std::printf("  avg delivery   : %.4f%% of fleet per push\n",
              100.0 - study.effectiveness.avgMissPercent);
  std::printf("  total misses   : %llu machine-updates\n",
              static_cast<unsigned long long>(
                  study.effectiveness.totalMisses));

  if (study.missedLifetimes.empty()) {
    std::printf("  every machine received every update.\n");
    return 0;
  }

  std::printf("\nage of machines that missed an update (cycles in fleet):\n");
  std::fputs(renderLogBins(logBins(study.missedLifetimes)).c_str(), stdout);

  // The operational takeaway the paper draws in §7.3: nodes older than a
  // small warm-up age are effectively always reached.
  std::uint64_t youngMisses = 0;
  for (const auto& [lifetime, count] : study.missedLifetimes.sorted())
    if (lifetime <= 30) youngMisses += count;
  std::printf(
      "\n%.1f%% of misses hit machines younger than 30 cycles; machines "
      "past their join warm-up virtually never miss an update.\n"
      "Mitigation (paper §7.3): have fresh joiners gossip at a higher "
      "rate for their first few cycles.\n",
      100.0 * static_cast<double>(youngMisses) /
          static_cast<double>(study.missedLifetimes.total()));
  return 0;
}
