// Domain-proximity ring — the §8 optimisation: nodes form their sequence
// id by reversing their domain name and appending a random number, so the
// VICINITY ring self-organises sorted by domain, and domains sorted by
// country. Dissemination then mostly travels within a domain before
// crossing borders, instead of bouncing Netherlands -> Australia ->
// Switzerland -> Canada (the paper's example of a terrible path).
//
//   $ ./domain_ring [--nodes 300]
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "analysis/graph_analysis.hpp"
#include "analysis/scenario.hpp"
#include "common/cli.hpp"
#include "gossip/domain_key.hpp"

using namespace vs07;
using cast::Strategy;

int main(int argc, char** argv) {
  CliParser parser("Domain-sorted RingCast ring (paper §8).");
  parser.option("nodes", "population size (default 300)");
  const auto args = parser.parseOrExit(argc, argv);
  if (!args) return 0;
  const auto nodes =
      static_cast<std::uint32_t>(args->getUint("nodes", 300));

  // Sub-domains of one organisation share their sequence-id prefix (the
  // 40-bit key truncates past "country.org"), so the ring groups at the
  // organisation level: that is the granularity we demonstrate.
  const std::vector<std::string> domains{
      "inf.ethz.ch", "ee.ethz.ch",   "cs.vu.nl",      "few.vu.nl",
      "cs.berkeley.edu", "eecs.mit.edu", "cs.cornell.edu"};
  auto orgOf = [](const std::string& domain) {
    const auto lastDot = domain.rfind('.');
    const auto secondDot = domain.rfind('.', lastDot - 1);
    return secondDot == std::string::npos ? domain
                                          : domain.substr(secondDot + 1);
  };

  // Defer the warm-up so each node's sequence id can be replaced with its
  // domain key before gossip starts copying profiles into views.
  auto scenario =
      analysis::Scenario::builder().nodes(nodes).seed(21).noWarmup().build();
  auto& network = scenario.network();
  Rng rng(22);
  std::map<NodeId, std::string> domainOf;
  for (NodeId id = 0; id < nodes; ++id) {
    const auto& domain = domains[rng.below(domains.size())];
    domainOf[id] = domain;
    network.setSeqId(id, gossip::domainSequenceId(
                             domain, static_cast<std::uint16_t>(rng())));
  }
  scenario.warmup();

  const auto convergence =
      analysis::ringConvergence(network, scenario.vicinity());
  std::printf("ring converged: %.1f%% of nodes know both neighbours\n\n",
              100.0 * convergence.bothAccuracy);

  // Walk the ring in id order and show the domain grouping: the walk
  // changes domains only at domain borders, not once per step.
  std::vector<NodeId> ringOrder(nodes);
  for (NodeId id = 0; id < nodes; ++id) ringOrder[id] = id;
  std::sort(ringOrder.begin(), ringOrder.end(), [&](NodeId a, NodeId b) {
    return network.seqId(a) < network.seqId(b);
  });
  std::printf("the ring, one line per contiguous organisation segment:\n");
  std::string currentOrg;
  std::uint32_t runLength = 0;
  std::uint32_t changes = 0;
  for (const NodeId id : ringOrder) {
    const auto org = orgOf(domainOf[id]);
    if (org != currentOrg) {
      if (!currentOrg.empty()) {
        std::printf("  %-16s x%u\n", currentOrg.c_str(), runLength);
        ++changes;
      }
      currentOrg = org;
      runLength = 0;
    }
    ++runLength;
  }
  std::printf("  %-16s x%u\n", currentOrg.c_str(), runLength);
  std::printf(
      "\n%u organisation borders along the full ring (%u nodes): each "
      "organisation is one contiguous arc, and arcs sort by country "
      "(ch < edu < nl in reversed-name order).\n",
      changes, nodes);

  // Locality of the protocol's actual d-links: fraction of successor
  // links that stay inside the node's own organisation.
  std::uint32_t localSucc = 0;
  std::uint32_t resolved = 0;
  for (NodeId id = 0; id < nodes; ++id) {
    const NodeId succ = scenario.vicinity().ringNeighbors(id).successor;
    if (succ == kNoNode) continue;
    ++resolved;
    localSucc += orgOf(domainOf[succ]) == orgOf(domainOf[id]);
  }
  std::printf(
      "\n%.1f%% of protocol successor d-links stay within the node's own "
      "organisation (crossings happen only at the %u borders).\n",
      100.0 * localSucc / resolved, changes);

  // Dissemination still completes over the domain-sorted ring.
  auto session = scenario.snapshotSession(
      {.strategy = Strategy::kRingCast, .fanout = 3, .seed = 3});
  const auto report = session.publish(0);
  std::printf(
      "\nRingCast at fanout 3 notified %llu/%u nodes in %u hops over the "
      "domain-sorted ring.\n",
      static_cast<unsigned long long>(report.notified), nodes,
      report.lastHop);
  return 0;
}
